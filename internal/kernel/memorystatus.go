// memorystatus.go implements the kernel's resource-governance ladder: the
// iOS jetsam/memorystatus subsystem re-hosted on the domestic kernel.
// Apps Cider runs natively are written against exactly these semantics —
// memory-pressure notifications first, then priority-ordered kills — so
// faithful re-hosting needs the resource layer, not just the syscall
// surface. Every decision runs on the virtual clock and iterates tasks in
// sorted order, so the whole degradation ladder is bit-reproducible under
// replay.
package kernel

import (
	"fmt"
	"path"
	"sort"
	"time"

	"repro/internal/fault"
	"repro/internal/trace"
)

// Band is a jetsam priority band. Lower values are more important; kills
// walk the bands from Idle down toward Foreground, which is only ever
// touched when nothing else is left.
type Band int

const (
	// BandForeground is the user-visible app: last to die.
	BandForeground Band = iota
	// BandBackground is a backgrounded app.
	BandBackground
	// BandDaemon is a launchd-supervised service (respawned after jetsam).
	BandDaemon
	// BandIdle is a suspended/idle process: first to die.
	BandIdle
	numBands
)

var bandNames = [...]string{"foreground", "background", "daemon", "idle"}

func (b Band) String() string {
	if b >= 0 && int(b) < len(bandNames) {
		return bandNames[b]
	}
	return fmt.Sprintf("band(%d)", int(b))
}

// PressureLevel is a memory-pressure notification level in canonical
// (kernel) numbering. The user-space runtimes translate it into their
// persona's vocabulary: libsystem into XNU dispatch-source flags, bionic
// into Linux/Android trim levels.
type PressureLevel int

const (
	// PressureNormal means below the warn watermark.
	PressureNormal PressureLevel = iota
	// PressureWarn asks cooperative apps to shed caches.
	PressureWarn
	// PressureCritical precedes kills.
	PressureCritical
)

func (l PressureLevel) String() string {
	switch l {
	case PressureNormal:
		return "normal"
	case PressureWarn:
		return "warn"
	case PressureCritical:
		return "critical"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Watermark fractions of the jetsam budget. 70% of available RAM triggers
// pressure notifications; 85% starts killing. Both are pure functions of
// the hw profile, so the ladder engages at the same virtual instant on
// every run.
const (
	warnNumerator     = 70
	criticalNumerator = 85
	watermarkDenom    = 100
)

// bandLimitDivisor gives each band's per-task footprint ceiling as a
// fraction of the jetsam budget: a foreground app may grow to half the
// budget, an idle process to 1/32 of it. Exceeding the ceiling is a
// highwater kill of that task alone, independent of global pressure.
var bandLimitDivisor = [numBands]uint64{
	BandForeground: 2,
	BandBackground: 8,
	BandDaemon:     16,
	BandIdle:       32,
}

// jetsamLogDir is where the kernel writes jetsam reports, beside the
// crash reports crashreporterd produces (services.CrashLogDir — the
// kernel cannot import services, so the path is duplicated here).
const jetsamLogDir = "/var/log/crashes"

// pressureHandler is one registered pressure-notification callback.
type pressureHandler struct {
	pid int
	seq int
	tk  *Task
	fn  func(level PressureLevel)
}

// Memorystatus is the kernel's resource-governance state: the jetsam
// budget and watermarks derived from the device profile, per-task priority
// bands, registered pressure handlers, and the record of kills.
type Memorystatus struct {
	k *Kernel

	// budget, warn and critical derive from hw.MemModel.JetsamBudget().
	budget   uint64
	warn     uint64
	critical uint64

	// bands maps pid -> jetsam band; absent means BandForeground.
	bands map[int]Band
	// essential pids (launchd) are never victims.
	essential map[int]bool

	// handlers are pressure-notification registrations, delivered in
	// (pid, registration order) so delivery order never depends on map
	// iteration.
	handlers []*pressureHandler
	nextSeq  int

	// level is the last ladder level announced (edge-triggered notify).
	level PressureLevel

	// pending marks tasks a kill has been issued for but whose exit has
	// not happened yet: excluded from usage and from victim selection so
	// one episode converges without waiting for the victims to run.
	pending map[int]bool
	// jetsammed records pids killed by jetsam until a supervisor claims
	// them via TakeJetsam — how launchd tells jetsam from crashes.
	jetsammed map[int]Band

	// kills counts victims per band for tests and cider stats.
	kills [numBands]uint64
	// busy guards against reentry: a pressure handler shedding caches
	// produces footprint deltas of its own.
	busy bool
}

// newMemorystatus builds the subsystem for a booted kernel.
func newMemorystatus(k *Kernel) *Memorystatus {
	budget := k.device.Mem.JetsamBudget()
	return &Memorystatus{
		k:         k,
		budget:    budget,
		warn:      budget * warnNumerator / watermarkDenom,
		critical:  budget * criticalNumerator / watermarkDenom,
		bands:     make(map[int]Band),
		essential: make(map[int]bool),
		pending:   make(map[int]bool),
		jetsammed: make(map[int]Band),
	}
}

// Memorystatus returns the kernel's resource-governance subsystem.
func (k *Kernel) Memorystatus() *Memorystatus { return k.memstat }

// Budget returns the jetsam budget (bytes available to user tasks).
func (ms *Memorystatus) Budget() uint64 { return ms.budget }

// Watermarks returns the (warn, critical) byte thresholds.
func (ms *Memorystatus) Watermarks() (uint64, uint64) { return ms.warn, ms.critical }

// BandLimit returns the per-task footprint ceiling for a band.
func (ms *Memorystatus) BandLimit(b Band) uint64 {
	if b < 0 || b >= numBands {
		return ms.budget
	}
	return ms.budget / bandLimitDivisor[b]
}

// SetBand assigns a task's jetsam priority band.
func (ms *Memorystatus) SetBand(tk *Task, b Band) {
	if b < 0 || b >= numBands {
		return
	}
	ms.bands[tk.pid] = b
}

// BandOf returns a task's band (BandForeground when never assigned).
func (ms *Memorystatus) BandOf(tk *Task) Band { return ms.bands[tk.pid] }

// SetEssential exempts a task from victim selection entirely (launchd:
// killing pid 1 would take the whole cell down, the opposite of graceful
// degradation).
func (ms *Memorystatus) SetEssential(tk *Task) { ms.essential[tk.pid] = true }

// OnPressure registers a memory-pressure handler on behalf of tk. The
// handler runs synchronously in the context of whichever thread crossed
// the watermark — the shrinker convention — so registrants must only
// touch state that tolerates foreign-thread execution (cache drops).
// Registrations die with the task.
func (ms *Memorystatus) OnPressure(tk *Task, fn func(level PressureLevel)) {
	ms.handlers = append(ms.handlers, &pressureHandler{pid: tk.pid, seq: ms.nextSeq, tk: tk, fn: fn})
	ms.nextSeq++
}

// Kills returns the total and per-band jetsam kill counts.
func (ms *Memorystatus) Kills() (total uint64, perBand [int(numBands)]uint64) {
	for b, n := range ms.kills {
		perBand[b] = n
		total += n
	}
	return total, perBand
}

// taskExit retires a task's governance state on exit: its kill (if one
// was issued) is no longer pending, and its band assignment dies with it.
// The jetsammed record survives until a supervisor claims it.
func (ms *Memorystatus) taskExit(tk *Task) {
	delete(ms.pending, tk.pid)
	delete(ms.bands, tk.pid)
	delete(ms.essential, tk.pid)
}

// TakeJetsam reports whether pid's death was a jetsam kill, consuming the
// record. launchd's supervisor calls this for every abnormal child exit
// to keep load-shedding out of the crash-loop accounting.
func (ms *Memorystatus) TakeJetsam(pid int) (Band, bool) {
	b, ok := ms.jetsammed[pid]
	if ok {
		delete(ms.jetsammed, pid)
	}
	return b, ok
}

// Usage returns the resident bytes currently charged against the jetsam
// budget: the footprint sum over running tasks, excluding victims whose
// kill is already issued. Computed on demand from the authoritative
// per-space ledgers, so it cannot drift.
func (ms *Memorystatus) Usage() uint64 {
	var sum uint64
	for pid, tk := range ms.k.tasks {
		if tk.state != taskRunning || ms.pending[pid] {
			continue
		}
		sum += tk.mem.Footprint()
	}
	return sum
}

// footprintDelta is the FootprintHook target: every resident-byte change
// of every task funnels through here. Releases (negative deltas) never
// start an episode; growth re-evaluates the ladder.
func (ms *Memorystatus) footprintDelta(tk *Task, delta int64) {
	if delta <= 0 || ms.busy {
		return
	}
	// Outside simulated execution (boot-time image assembly) there is no
	// proc to charge the ladder's work to; the next in-sim growth
	// re-evaluates with the same ledger.
	p := ms.k.sim.Current()
	if p == nil {
		return
	}
	ms.busy = true
	defer func() { ms.busy = false }()

	// Fault-injected episodes: an OpMemPressure rule keyed by the charging
	// task's executable path forces the ladder through a warn (notify) or,
	// with Errno 2, a critical (single-kill) episode using the real
	// machinery — only the watermark comparison is overridden. This is how
	// the pressure soaks drive deterministic storms without allocating
	// device-scale buffers on the host.
	if in := ms.k.fault; in != nil && in.Has(fault.OpMemPressure) {
		if out, fire := in.MemPressure(p.Now(), tk.path); fire {
			if out.Delay > 0 {
				p.Advance(out.Delay)
			}
			if out.Errno == int(PressureCritical) {
				ms.notify(PressureCritical)
				ms.killOne()
			} else {
				ms.notify(PressureWarn)
			}
			return
		}
	}

	// Highwater: a task over its band's per-task ceiling is killed alone,
	// regardless of global pressure.
	band := ms.bands[tk.pid]
	if !ms.essential[tk.pid] && !ms.pending[tk.pid] && tk.mem.Footprint() > ms.BandLimit(band) {
		ms.jetsam(tk, "highwater")
		return
	}

	// Organic watermark ladder, edge-triggered: crossing warn notifies
	// once; crossing critical notifies and kills until usage drops below
	// the critical line.
	usage := ms.Usage()
	switch {
	case usage >= ms.critical:
		if ms.level < PressureCritical {
			ms.level = PressureCritical
			ms.notify(PressureCritical)
		}
		for ms.Usage() >= ms.critical {
			if !ms.killOne() {
				break // nothing left to kill
			}
		}
	case usage >= ms.warn:
		if ms.level < PressureWarn {
			ms.level = PressureWarn
			ms.notify(PressureWarn)
		}
	default:
		ms.level = PressureNormal
	}
}

// notify delivers a pressure level to every registered handler in
// (pid, registration) order, charging the current thread for each
// delivery — the shrinker model: whoever crossed the watermark pays for
// the shedding it triggers.
func (ms *Memorystatus) notify(level PressureLevel) {
	p := ms.k.sim.Current()
	// Compact dead registrations first so delivery order is a pure
	// function of the live set.
	live := ms.handlers[:0]
	for _, h := range ms.handlers {
		if h.tk.state == taskRunning && !ms.pending[h.pid] {
			live = append(live, h)
		}
	}
	ms.handlers = live
	sort.SliceStable(ms.handlers, func(i, j int) bool {
		if ms.handlers[i].pid != ms.handlers[j].pid {
			return ms.handlers[i].pid < ms.handlers[j].pid
		}
		return ms.handlers[i].seq < ms.handlers[j].seq
	})
	for _, h := range ms.handlers {
		p.Advance(ms.k.costs.PressureNotify)
		if tr := ms.k.tracer; tr != nil {
			tr.Count(trace.CounterPressureNotify, 1)
		}
		h.fn(level)
	}
}

// killOne selects and kills the single worst victim: highest band value
// (Idle first), then largest footprint, then lowest pid. Foreground tasks
// are only eligible when no other band has candidates — the
// foreground-survival invariant. Returns false when no victim exists.
func (ms *Memorystatus) killOne() bool {
	var victim *Task
	var victimBand Band
	candidate := func(tk *Task, b Band) bool {
		if victim == nil {
			return true
		}
		if b != victimBand {
			return b > victimBand
		}
		vf, tf := victim.mem.Footprint(), tk.mem.Footprint()
		if tf != vf {
			return tf > vf
		}
		return tk.pid < victim.pid
	}
	pids := make([]int, 0, len(ms.k.tasks))
	for pid := range ms.k.tasks {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	foregroundOnly := true
	for _, pid := range pids {
		tk := ms.k.tasks[pid]
		if tk.state != taskRunning || ms.pending[pid] || ms.essential[pid] {
			continue
		}
		b := ms.bands[pid]
		if b != BandForeground {
			foregroundOnly = false
		}
	}
	for _, pid := range pids {
		tk := ms.k.tasks[pid]
		if tk.state != taskRunning || ms.pending[pid] || ms.essential[pid] {
			continue
		}
		b := ms.bands[pid]
		if b == BandForeground && !foregroundOnly {
			continue
		}
		if candidate(tk, b) {
			victim = tk
			victimBand = b
		}
	}
	if victim == nil {
		return false
	}
	ms.jetsam(victim, "vm-pressure")
	return true
}

// jetsam kills one task: write the jetsam report beside the crash
// reports, record the kill for the supervisor and the counters, and post
// SIGKILL — the same exception/termination path a crash takes, so the
// victim's teardown (descriptor close, unmap, zombie, SIGCHLD) is the
// already-audited one.
func (ms *Memorystatus) jetsam(tk *Task, cause string) {
	k := ms.k
	band := ms.bands[tk.pid]
	ms.pending[tk.pid] = true
	ms.jetsammed[tk.pid] = band
	ms.kills[band]++
	p := k.sim.Current()
	p.Advance(k.costs.JetsamKill)
	ms.writeReport(tk, band, cause, p.Now())
	if tr := k.tracer; tr != nil {
		tr.Count(trace.CounterJetsamKills, 1)
		tr.Count(trace.CounterJetsamKills+"."+band.String(), 1)
	}
	k.postSignal(tk, sigKILL)
}

// writeReport persists the jetsam record into the VFS crash-log
// directory, beside crashreporterd's crash reports and in the same
// key=value shape. Deterministic naming (victim, pid, virtual timestamp)
// makes every run produce the identical file set.
func (ms *Memorystatus) writeReport(tk *Task, band Band, cause string, now time.Duration) {
	name := path.Base(tk.path)
	if name == "" || name == "." {
		name = "unknown"
	}
	file := fmt.Sprintf("%s/%s-pid%d-%dns.jetsam", jetsamLogDir, name, tk.pid, now.Nanoseconds())
	body := fmt.Sprintf(
		"reason=jetsam\ncause=%s\npid=%d\npath=%s\nband=%s\nfootprint=%d\nband_limit=%d\nusage=%d\nbudget=%d\nat_ns=%d\n",
		cause, tk.pid, tk.path, band, tk.mem.Footprint(), ms.BandLimit(band), ms.Usage(), ms.budget, now.Nanoseconds())
	if err := ms.k.root.MkdirAll(jetsamLogDir); err != nil {
		return
	}
	node, err := ms.k.root.Create(file)
	if err != nil {
		return
	}
	node.SetData([]byte(body))
}
