package kernel

import (
	"testing"

	"repro/internal/vfs"
)

// Every Errno declared in errno.go must be explicitly pinned to a BSD
// number and survive the round trip through the persona boundary in both
// directions. Without this, a fault-injected errno whose Linux and BSD
// numbers differ would reach an iOS-persona thread Linux-numbered.
func TestErrnoRoundTripExhaustive(t *testing.T) {
	if len(errnoNames) < 20 {
		t.Fatalf("errnoNames has only %d entries; declared-errno universe looks truncated", len(errnoNames))
	}
	seen := make(map[int]Errno)
	for e, name := range errnoNames {
		if e == OK {
			continue
		}
		x, pinned := linuxToXNUErrno[e]
		if !pinned {
			t.Errorf("%s (%d) is not pinned in linuxToXNUErrno", name, int(e))
			continue
		}
		if prev, dup := seen[x]; dup {
			t.Errorf("%s and %s both map to BSD %d", name, errnoNames[prev], x)
		}
		seen[x] = e
		if got := ErrnoToXNU(e); got != x {
			t.Errorf("ErrnoToXNU(%s) = %d, want %d", name, got, x)
		}
		if back := ErrnoFromXNU(ErrnoToXNU(e)); back != e {
			t.Errorf("%s does not round-trip: ToXNU=%d, FromXNU=%s", name, ErrnoToXNU(e), back)
		}
	}
}

// Spot-check the pairs whose numbers actually differ between Linux and BSD.
func TestErrnoKnownDivergentPairs(t *testing.T) {
	cases := []struct {
		e   Errno
		bsd int
	}{
		{EAGAIN, 35},
		{ENOSYS, 78},
		{ELOOP, 62},
		{ENOTEMPTY, 66},
		{EOPNOTSUPP, 102},
		{EINTR, 4},
		{ENOMEM, 12},
		{EMFILE, 24},
	}
	for _, c := range cases {
		if got := ErrnoToXNU(c.e); got != c.bsd {
			t.Errorf("ErrnoToXNU(%s) = %d, want %d", c.e, got, c.bsd)
		}
		if got := ErrnoFromXNU(c.bsd); got != c.e {
			t.Errorf("ErrnoFromXNU(%d) = %s, want %s", c.bsd, got, c.e)
		}
	}
}

func TestErrnoFromVFSFaultErrors(t *testing.T) {
	if got := ErrnoFromVFS(&vfs.ErrIO{Path: "/x"}); got != EIO {
		t.Errorf("ErrIO -> %s, want EIO", got)
	}
	if got := ErrnoFromVFS(&vfs.ErrNoSpace{Path: "/x"}); got != ENOSPC {
		t.Errorf("ErrNoSpace -> %s, want ENOSPC", got)
	}
}
