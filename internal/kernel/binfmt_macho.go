package kernel

import (
	"fmt"

	"repro/internal/macho"
	"repro/internal/mem"
	"repro/internal/persona"
	"repro/internal/prog"
)

// MachOLoader is Cider's kernel Mach-O binary loader (Section 4.1): it
// interprets the Mach-O image, loads its text and data segments, tags the
// current thread with the iOS persona, and transfers control to the
// user-space dynamic linker, dyld, named by the image's LC_LOAD_DYLINKER
// command — exactly the sequence XNU's own loader performs.
type MachOLoader struct {
	// DyldFallbackKey resolves the dylinker when its binary is not present
	// in the filesystem (tests); normally the dylinker path is looked up
	// and its own Mach-O text payload provides the key.
	DyldFallbackKey string
}

// Name implements BinFmt.
func (l *MachOLoader) Name() string { return "binfmt_macho" }

// Recognize implements BinFmt. Binfmt probing runs on every exec, so it
// sniffs the eight header bytes it needs instead of decoding the image;
// Load re-validates with a full parse.
func (l *MachOLoader) Recognize(data []byte) bool {
	filetype, ok := macho.Sniff(data)
	return ok && filetype == macho.TypeExecute
}

// UserData keys through which the loader hands dyld its work order (the
// simulated equivalent of the dyld bootstrap stack frame).
const (
	// DyldExePathKey is the main executable's path.
	DyldExePathKey = "dyld.exe_path"
	// DyldEntryKey is the main executable's program key.
	DyldEntryKey = "dyld.entry_key"
	// DyldNeededKey is the main executable's LC_LOAD_DYLIB list.
	DyldNeededKey = "dyld.needed"
)

// Load implements BinFmt.
func (l *MachOLoader) Load(t *Thread, path string, data []byte, argv []string) (prog.Func, Errno) {
	f, err := macho.ParseShared(data)
	if err != nil {
		return nil, ENOEXEC
	}
	if f.FileType != macho.TypeExecute {
		return nil, ENOEXEC
	}
	if f.Encrypted() {
		// App Store binaries are FairPlay-encrypted; only an Apple device
		// holds the keys. Cider cannot run them until they are decrypted
		// (Section 6.1) — the kernel rejects them.
		return nil, EACCES
	}
	k := t.k

	// "When a Mach-O binary is loaded, the kernel tags the current thread
	// with an iOS persona" (Section 4.1). Every failure past this point
	// must undo the tag and every mapping made so far: exec's contract is
	// that a failed load leaves the caller's image untouched, and during
	// binfmt probing a partial image would corrupt the next loader's view.
	prevPersona := t.Persona.Current()
	t.Persona.Switch(persona.IOS)
	var mapped []uint64
	rollback := func() {
		for i := len(mapped) - 1; i >= 0; i-- {
			t.task.mem.Unmap(mapped[i])
		}
		t.Persona.Switch(prevPersona)
	}

	// Map the segments.
	var entryKey string
	for _, seg := range f.Segments {
		t.charge(k.costs.SegmentMap)
		size := uint64(seg.VMSize)
		if size < uint64(len(seg.Data)) {
			size = uint64(len(seg.Data))
		}
		if size == 0 {
			continue
		}
		r, merr := t.task.mem.Map(0, size, machoProt(seg.Prot), fmt.Sprintf("%s %s", path, seg.Name), false)
		if merr != nil {
			rollback()
			return nil, ENOMEM
		}
		mapped = append(mapped, r.Base)
		if len(seg.Data) > 0 {
			copy(r.Backing().Bytes(), seg.Data)
		}
		if seg.Name == "__TEXT" {
			if key, perr := prog.ParseTextPayload(seg.Data); perr == nil {
				entryKey = key
			}
		}
	}
	if entryKey == "" {
		rollback()
		return nil, ENOEXEC
	}
	if r, merr := t.task.mem.Map(0, 1<<20, mem.ProtRead|mem.ProtWrite, "[stack]", false); merr != nil {
		rollback()
		return nil, ENOMEM
	} else {
		mapped = append(mapped, r.Base)
	}

	// Hand off to dyld, exactly as the XNU Mach-O loader invokes the
	// dylinker to finish the launch in user space.
	dyldKey, errno := l.resolveDylinker(t, f.Dylinker)
	if errno != OK {
		rollback()
		return nil, errno
	}
	dyldEntry, ok := k.registry.Lookup(dyldKey)
	if !ok {
		rollback()
		return nil, ENOEXEC
	}
	needed := append([]string(nil), f.Dylibs...)
	return func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		th.task.SetUserData(DyldExePathKey, path)
		th.task.SetUserData(DyldEntryKey, entryKey)
		th.task.SetUserData(DyldNeededKey, needed)
		return dyldEntry(&prog.Call{Ctx: th, Args: c.Args})
	}, OK
}

// resolveDylinker finds the program key of the dylinker binary: it reads
// the dylinker's own Mach-O image from the filesystem and extracts its
// text payload, falling back to DyldFallbackKey.
func (l *MachOLoader) resolveDylinker(t *Thread, dylinker string) (string, Errno) {
	if dylinker == "" {
		if l.DyldFallbackKey != "" {
			return l.DyldFallbackKey, OK
		}
		return "", ENOEXEC
	}
	node, err := t.k.root.Lookup(dylinker)
	if err != nil {
		if l.DyldFallbackKey != "" {
			return l.DyldFallbackKey, OK
		}
		return "", ErrnoFromVFS(err)
	}
	t.charge(t.k.device.Storage.ReadTime(node.Size()))
	df, perr := macho.ParseShared(node.Data())
	if perr != nil {
		return "", ENOEXEC
	}
	text := df.Segment("__TEXT")
	if text == nil {
		return "", ENOEXEC
	}
	key, kerr := prog.ParseTextPayload(text.Data)
	if kerr != nil {
		return "", ENOEXEC
	}
	return key, OK
}

func machoProt(p uint32) mem.Prot {
	var out mem.Prot
	if p&macho.ProtRead != 0 {
		out |= mem.ProtRead
	}
	if p&macho.ProtWrite != 0 {
		out |= mem.ProtWrite
	}
	if p&macho.ProtExecute != 0 {
		out |= mem.ProtExec
	}
	return out
}
