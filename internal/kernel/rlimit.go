package kernel

// POSIX resource limits (getrlimit/setrlimit), canonical Linux/ARM EABI
// resource numbering. The XNU ABI table translates XNU resource numbers to
// these at the boundary, the same way it renumbers signals and open(2)
// flag bits — rlimit resource numbers are persona-domain payloads, not
// shared constants (XNU says RLIMIT_NOFILE is 8, Linux says 7).

// RLimit is one resource limit: the soft (enforced) value and the hard
// ceiling the soft value may be raised to.
type RLimit struct {
	// Cur is the soft limit, the value the kernel enforces.
	Cur uint64
	// Max is the hard limit.
	Max uint64
}

// RLimInfinity marks an unlimited resource (RLIM_INFINITY).
const RLimInfinity = ^uint64(0)

// Canonical (Linux/ARM) resource numbers (uapi/asm-generic/resource.h).
const (
	// RLimitCPU bounds CPU seconds.
	RLimitCPU = 0
	// RLimitFSize bounds created file sizes.
	RLimitFSize = 1
	// RLimitData bounds the data segment: anonymous (non-file-named)
	// mappings, enforced at map time by the footprint accounting layer.
	RLimitData = 2
	// RLimitStack bounds the stack.
	RLimitStack = 3
	// RLimitCore bounds core dumps.
	RLimitCore = 4
	// RLimitRSS bounds resident set size (Linux ignores it; so do we).
	RLimitRSS = 5
	// RLimitNProc bounds processes per user.
	RLimitNProc = 6
	// RLimitNoFile bounds open file descriptors, enforced by FDTable.
	RLimitNoFile = 7
	// RLimitMemlock bounds locked memory.
	RLimitMemlock = 8
	// RLimitAS bounds total mapped address space, enforced at map time.
	RLimitAS = 9
	// numRLimits bounds valid canonical resource numbers.
	numRLimits = 10
)

// NumRLimits exposes the resource-number bound to user-space runtimes.
const NumRLimits = numRLimits

// DefaultNoFileCur and DefaultNoFileMax are the boot-time RLIMIT_NOFILE
// values, matching a typical mobile configuration (soft 1024, hard 4096).
const (
	DefaultNoFileCur = DefaultFDLimit
	DefaultNoFileMax = 4096
)

// defaultRLimits returns the boot-time limit set: everything unlimited
// except RLIMIT_NOFILE.
func defaultRLimits() [numRLimits]RLimit {
	var rl [numRLimits]RLimit
	for i := range rl {
		rl[i] = RLimit{Cur: RLimInfinity, Max: RLimInfinity}
	}
	rl[RLimitNoFile] = RLimit{Cur: DefaultNoFileCur, Max: DefaultNoFileMax}
	return rl
}

// linuxToXNURlimit maps canonical resource numbers to XNU's
// (bsd/sys/resource.h) where they differ. XNU conflates RLIMIT_RSS and
// RLIMIT_AS into one number (5), so the map is deliberately not a
// bijection: both canonical RSS and canonical AS translate to XNU 5, and
// the inverse picks AS — the limit XNU actually enforces there. CPU,
// FSIZE, DATA, STACK and CORE coincide and pass through.
var linuxToXNURlimit = map[int]int{
	RLimitRSS:     5,
	RLimitNProc:   7,
	RLimitNoFile:  8,
	RLimitMemlock: 6,
	RLimitAS:      5,
}

// xnuToLinuxRlimit is the inverse mapping (XNU 5 resolves to canonical AS).
var xnuToLinuxRlimit = map[int]int{
	5: RLimitAS,
	6: RLimitMemlock,
	7: RLimitNProc,
	8: RLimitNoFile,
}

// RlimitToXNU converts a canonical resource number to XNU numbering.
func RlimitToXNU(res int) int {
	if x, ok := linuxToXNURlimit[res]; ok {
		return x
	}
	return res
}

// RlimitFromXNU converts an XNU resource number to canonical numbering.
func RlimitFromXNU(res int) int {
	if l, ok := xnuToLinuxRlimit[res]; ok {
		return l
	}
	return res
}

// Rlimit returns the task's limit for a canonical resource number.
func (tk *Task) Rlimit(res int) RLimit {
	if res < 0 || res >= numRLimits {
		return RLimit{}
	}
	return tk.rlimits[res]
}

// getrlimitInternal implements getrlimit(2) with canonical numbering.
func (t *Thread) getrlimitInternal(res int) (RLimit, Errno) {
	if res < 0 || res >= numRLimits {
		return RLimit{}, EINVAL
	}
	t.charge(t.k.costs.RlimitBase)
	return t.task.rlimits[res], OK
}

// setrlimitInternal implements setrlimit(2): the soft limit must not
// exceed the hard limit. The simulation has no privilege model, so raising
// the hard limit is allowed (a root process's view). NOFILE changes
// propagate to the descriptor table immediately; AS/DATA take effect at
// the next mapping request.
func (t *Thread) setrlimitInternal(res int, lim RLimit) Errno {
	if res < 0 || res >= numRLimits || lim.Cur > lim.Max {
		return EINVAL
	}
	t.charge(t.k.costs.RlimitBase)
	t.task.rlimits[res] = lim
	if res == RLimitNoFile {
		n := lim.Cur
		// RLIM_INFINITY (or anything absurd) clamps to a bound that still
		// fits an int; the table never grows near it in practice.
		const fdCap = 1 << 20
		if n > fdCap {
			n = fdCap
		}
		t.task.fds.SetLimit(int(n))
	}
	return OK
}
