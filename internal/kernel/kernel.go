// Package kernel implements the simulated domestic kernel: a Linux-like
// core (tasks, threads, fork/exec/wait, signals, pipes, sockets, select,
// file descriptors, device framework) that Cider extends with per-thread
// personas, a Mach-O binary loader, and an XNU syscall/signal ABI
// (Section 4.1 of the paper).
//
// The same package also models the XNU kernel running natively on the iPad
// mini — the fourth experimental configuration — by swapping the cost
// profile and the set of registered binary loaders.
package kernel

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/persona"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Profile selects which kernel the simulation boots — the three system
// configurations of Section 6 (vanilla Android, Cider, iOS/XNU).
type Profile int

const (
	// ProfileLinuxVanilla is an unmodified Android/Linux kernel: Linux ABI
	// only, no persona support, ELF binaries only.
	ProfileLinuxVanilla Profile = iota
	// ProfileCider is the Cider-enhanced Linux kernel: persona-aware
	// syscall entry, Mach-O + ELF loaders, XNU ABI, duct-taped subsystems.
	ProfileCider
	// ProfileXNUNative is the XNU kernel as shipped on the iPad mini:
	// Mach-O binaries only, native XNU ABI, no persona machinery.
	ProfileXNUNative
)

func (p Profile) String() string {
	switch p {
	case ProfileLinuxVanilla:
		return "linux-vanilla"
	case ProfileCider:
		return "cider"
	case ProfileXNUNative:
		return "xnu-native"
	}
	return fmt.Sprintf("profile(%d)", int(p))
}

// Costs is the kernel operation cost table. Values are durations on the
// target device; constructors derive them from CPU cycle counts calibrated
// against the absolute numbers the paper reports (245 µs fork+exit, 8.5%
// null-syscall overhead, and so on — see DESIGN.md §5).
type Costs struct {
	// SyscallEntry/SyscallExit bound every trap.
	SyscallEntry time.Duration
	SyscallExit  time.Duration
	// PersonaCheck is the extra persona lookup Cider adds to every syscall
	// entry (the 8.5% null-syscall overhead; zero on vanilla kernels).
	PersonaCheck time.Duration
	// XNUTrapDemux, XNUArgTranslate and XNURetTranslate are the per-call
	// costs of running a foreign (XNU) syscall on the Linux kernel: trap
	// class demultiplexing, argument structure mapping, and return/CPU-flag
	// convention conversion (the additional 40%-8.5% of null-syscall
	// overhead for iOS binaries). All zero when the ABI is native.
	XNUTrapDemux    time.Duration
	XNUArgTranslate time.Duration
	XNURetTranslate time.Duration

	// SignalDeliverBase is the kernel cost to deliver a signal and run the
	// handler trampoline. SignalPersonaLookup is Cider's target-persona
	// check (the 3% lat_sig overhead); SignalXNUTranslate and
	// SignalXNUFrame are the signal-number translation and the larger
	// XNU sigframe copy for iOS-persona threads (the 25% overhead).
	SignalDeliverBase   time.Duration
	SignalPersonaLookup time.Duration
	SignalXNUTranslate  time.Duration
	SignalXNUFrame      time.Duration
	// SigactionBase covers installing a handler.
	SigactionBase time.Duration

	// ForkBase is fork's fixed cost; PTECopy is added per mapped page
	// (~23k pages of dylibs is what makes iOS fork 14x slower, §6.2).
	ForkBase time.Duration
	PTECopy  time.Duration
	// ExecTeardown is charged per owned page when exec discards the old
	// image (PTE/TLB teardown) — part of why exec'ing out of a 90 MB iOS
	// process is costly.
	ExecTeardown time.Duration
	// MachPortInit is Cider's per-fork Mach IPC task-port initialization
	// ("some extra work in Mach IPC initialization" — small).
	MachPortInit time.Duration
	// ExecBase is execve's fixed cost; SegmentMap is added per loadable
	// segment; BinfmtProbe per loader probed.
	ExecBase    time.Duration
	SegmentMap  time.Duration
	BinfmtProbe time.Duration
	// ExitBase and WaitBase cover _exit and wait4.
	ExitBase time.Duration
	WaitBase time.Duration

	// PipeHop and UnixHop are the one-way costs of a byte through a pipe /
	// UNIX-domain socket (including the wakeup).
	PipeHop time.Duration
	UnixHop time.Duration
	// SelectBase and SelectPerFD model select(2); SelectMaxFDs, when
	// non-zero, is the largest descriptor count the kernel accepts (the
	// iPad's select "simply failed to complete for 250 file descriptors").
	SelectBase   time.Duration
	SelectPerFD  time.Duration
	SelectMaxFDs int

	// File-descriptor layer CPU costs (storage device time is charged
	// separately from the hw.StorageModel).
	OpenBase   time.Duration
	CloseBase  time.Duration
	ReadBase   time.Duration
	WriteBase  time.Duration
	CreateBase time.Duration
	UnlinkBase time.Duration
	IoctlBase  time.Duration

	// SetPersonaCost is the kernel cost of the set_persona syscall beyond
	// normal entry/exit (ABI + TLS pointer swap) — half of a diplomatic
	// function's round trip.
	SetPersonaCost time.Duration

	// RlimitBase covers a getrlimit/setrlimit beyond entry/exit.
	RlimitBase time.Duration
	// PressureNotify is charged per memory-pressure handler delivery;
	// JetsamKill covers one memorystatus kill (victim selection slice,
	// report write, SIGKILL post). Both are charged to the thread whose
	// allocation crossed the watermark — the shrinker convention.
	PressureNotify time.Duration
	JetsamKill     time.Duration
}

// cyc converts cycles on cpu to a duration.
func cyc(cpu *hw.CPUModel, n float64) time.Duration { return cpu.Cycles(n) }

// NewLinuxCosts builds the cost table for a vanilla Linux/Android kernel on
// the given CPU. Cycle counts are calibrated so the Nexus 7 reproduces the
// paper's absolute anchors (null syscall ≈ 0.44 µs, fork+exit ≈ 245 µs for
// a small static binary, fork+exec ≈ 590 µs).
func NewLinuxCosts(cpu *hw.CPUModel) *Costs {
	return &Costs{
		SyscallEntry: cyc(cpu, 280),
		SyscallExit:  cyc(cpu, 250),

		SignalDeliverBase: cyc(cpu, 5200),
		SigactionBase:     cyc(cpu, 900),

		ForkBase:     cyc(cpu, 273000), // ~210 µs @1.3GHz
		PTECopy:      cyc(cpu, 56),     // ~43 ns/page
		ExecTeardown: cyc(cpu, 36),     // ~28 ns/page
		ExecBase:     cyc(cpu, 300000),
		SegmentMap:   cyc(cpu, 5200),
		BinfmtProbe:  cyc(cpu, 1300),
		ExitBase:     cyc(cpu, 26000),
		WaitBase:     cyc(cpu, 6500),

		PipeHop: cyc(cpu, 33800),
		UnixHop: cyc(cpu, 40300),

		SelectBase:  cyc(cpu, 6500),
		SelectPerFD: cyc(cpu, 195),

		OpenBase:   cyc(cpu, 3900),
		CloseBase:  cyc(cpu, 1300),
		ReadBase:   cyc(cpu, 780),
		WriteBase:  cyc(cpu, 780),
		CreateBase: cyc(cpu, 5200),
		UnlinkBase: cyc(cpu, 4550),
		IoctlBase:  cyc(cpu, 1040),

		RlimitBase:     cyc(cpu, 520),
		PressureNotify: cyc(cpu, 3900),
		JetsamKill:     cyc(cpu, 65000),
	}
}

// NewCiderCosts builds the cost table for the Cider-enhanced kernel: the
// Linux table plus persona checking on every syscall entry, XNU translation
// costs for foreign threads, signal persona handling, Mach task-port
// initialization on fork, and the set_persona syscall.
func NewCiderCosts(cpu *hw.CPUModel) *Costs {
	c := NewLinuxCosts(cpu)
	c.PersonaCheck = cyc(cpu, 47) // ≈8.5% of a 0.44µs null syscall

	c.XNUTrapDemux = cyc(cpu, 55)
	c.XNUArgTranslate = cyc(cpu, 75)
	c.XNURetTranslate = cyc(cpu, 42)

	c.SignalPersonaLookup = cyc(cpu, 160) // ≈3% of lat_sig
	c.SignalXNUTranslate = cyc(cpu, 390)
	c.SignalXNUFrame = cyc(cpu, 780) // larger sigframe copy

	c.MachPortInit = cyc(cpu, 2600)
	c.SetPersonaCost = cyc(cpu, 650)
	return c
}

// NewXNUNativeCosts builds the cost table for the XNU kernel on the iPad
// mini. Syscall entry is comparable to Linux, but select degrades sharply
// with descriptor count and rejects large sets, and local IPC is slower —
// matching the Fig. 5 local-communication group.
func NewXNUNativeCosts(cpu *hw.CPUModel) *Costs {
	return &Costs{
		SyscallEntry: cyc(cpu, 300),
		SyscallExit:  cyc(cpu, 270),

		SignalDeliverBase: cyc(cpu, 12800), // 175% above Cider's lat_sig
		SigactionBase:     cyc(cpu, 1000),

		// fork is cheap for iOS binaries here because dyld's shared cache
		// maps one prelinked region instead of 115 dylibs (see
		// internal/dyld); the kernel-side constants are ordinary.
		ForkBase:     cyc(cpu, 230000),
		PTECopy:      cyc(cpu, 60),
		ExecTeardown: cyc(cpu, 38),
		ExecBase:     cyc(cpu, 280000),
		SegmentMap:   cyc(cpu, 5000),
		BinfmtProbe:  cyc(cpu, 1200),
		ExitBase:     cyc(cpu, 25000),
		WaitBase:     cyc(cpu, 6000),

		PipeHop: cyc(cpu, 46000),
		UnixHop: cyc(cpu, 56000),

		// The select test's "overhead increased linearly with the number of
		// file descriptors to more than 10 times the cost" on the iPad, and
		// it fails outright at 250 descriptors.
		SelectBase:   cyc(cpu, 9000),
		SelectPerFD:  cyc(cpu, 4200),
		SelectMaxFDs: 248,

		OpenBase:   cyc(cpu, 4500),
		CloseBase:  cyc(cpu, 1500),
		ReadBase:   cyc(cpu, 900),
		WriteBase:  cyc(cpu, 900),
		CreateBase: cyc(cpu, 6000),
		UnlinkBase: cyc(cpu, 5200),
		IoctlBase:  cyc(cpu, 1100),

		RlimitBase: cyc(cpu, 560),
		// Native memorystatus: the original implementation this package
		// re-hosts, with the same shape but A5 cycle counts.
		PressureNotify: cyc(cpu, 4200),
		JetsamKill:     cyc(cpu, 70000),
	}
}

// Config assembles a kernel instance.
type Config struct {
	// Profile selects the kernel personality.
	Profile Profile
	// Device is the hardware the kernel runs on.
	Device *hw.Device
	// Root is the root filesystem.
	Root vfs.FileSystem
	// Registry resolves simulated program code.
	Registry *prog.Registry
	// Costs overrides the profile's default cost table when non-nil.
	Costs *Costs
}

// Kernel is one booted kernel instance.
type Kernel struct {
	sim      *sim.Sim
	profile  Profile
	device   *hw.Device
	root     vfs.FileSystem
	registry *prog.Registry
	costs    *Costs

	nextPID int
	tasks   map[int]*Task

	binfmts []BinFmt

	// tables maps persona -> syscall dispatch table. Vanilla kernels have
	// a single native table.
	tables [persona.NumKinds]*SyscallTable

	devices map[string]Device
	// deviceAddHooks fire on every AddDevice — the hook Cider uses to
	// create I/O Kit registry entries for Linux devices (Section 5.1).
	deviceAddHooks []func(Device)

	// extensions holds duct-taped subsystem state (Mach IPC tables, psynch
	// state, I/O Kit registry) keyed by subsystem name.
	extensions map[string]any

	// tracer, when non-nil, receives syscall records, signal events and
	// library-layer counters. Trace hooks never charge virtual time, so
	// attaching a tracer cannot change measured latencies.
	tracer *trace.Session

	// fault, when non-nil, injects deterministic failures at syscall
	// dispatch, blocking waits, memory mapping, and (via the extensions)
	// Mach IPC. See internal/fault and EnableFaults.
	fault *fault.Injector

	// exitHooks run for the exiting thread of every task exit, after the
	// task's own resources (fds, mappings) are released but before the
	// task becomes a zombie. Kernel extensions use them to tear down
	// per-task state (Mach port spaces).
	exitHooks []func(*Thread)

	// excBridge, when non-nil, is consulted before the default-terminate
	// disposition of a fatal signal on an iOS-persona thread. Returning
	// true means the exception was handled and the thread resumes.
	excBridge ExceptionBridge

	// memstat is the jetsam/memorystatus resource-governance subsystem;
	// always non-nil after New.
	memstat *Memorystatus
}

// ExceptionBridge translates a fatal canonical signal on an iOS-persona
// thread into a Mach exception message (EXC_BAD_ACCESS and friends) and
// reports whether a catcher handled it. The kernel cannot import the xnu
// extension, so xnu.InstallIPC wires the bridge in.
type ExceptionBridge func(t *Thread, sig int) bool

// New boots a kernel on the given simulator.
func New(s *sim.Sim, cfg Config) (*Kernel, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("kernel: config needs a device")
	}
	if cfg.Root == nil {
		return nil, fmt.Errorf("kernel: config needs a root filesystem")
	}
	if cfg.Registry == nil {
		cfg.Registry = prog.NewRegistry()
	}
	costs := cfg.Costs
	if costs == nil {
		switch cfg.Profile {
		case ProfileCider:
			costs = NewCiderCosts(cfg.Device.CPU)
		case ProfileXNUNative:
			costs = NewXNUNativeCosts(cfg.Device.CPU)
		default:
			costs = NewLinuxCosts(cfg.Device.CPU)
		}
	}
	k := &Kernel{
		sim:        s,
		profile:    cfg.Profile,
		device:     cfg.Device,
		root:       cfg.Root,
		registry:   cfg.Registry,
		costs:      costs,
		nextPID:    1,
		tasks:      make(map[int]*Task),
		devices:    make(map[string]Device),
		extensions: make(map[string]any),
	}
	k.memstat = newMemorystatus(k)
	return k, nil
}

// Sim returns the simulator the kernel runs on.
func (k *Kernel) Sim() *sim.Sim { return k.sim }

// Profile returns the kernel personality.
func (k *Kernel) Profile() Profile { return k.profile }

// Device returns the hardware profile.
func (k *Kernel) Device() *hw.Device { return k.device }

// Root returns the root filesystem.
func (k *Kernel) Root() vfs.FileSystem { return k.root }

// Registry returns the simulated-code registry.
func (k *Kernel) Registry() *prog.Registry { return k.registry }

// Costs returns the kernel cost table (mutable for ablation benches).
func (k *Kernel) Costs() *Costs { return k.costs }

// SetTracer attaches (or, with nil, detaches) a trace session.
func (k *Kernel) SetTracer(tr *trace.Session) { k.tracer = tr }

// Tracer returns the attached trace session, or nil when tracing is off.
// Library layers (diplomat, dyld, abi) read it dynamically so they need
// no wiring of their own.
func (k *Kernel) Tracer() *trace.Session { return k.tracer }

// EnableFaults attaches (or, with nil, detaches) a fault injector. The
// injector drives syscall-dispatch errno injection, allocation failure in
// task address spaces, and blocking-wait interruption via the simulator's
// interrupt hook; kernel extensions (Mach IPC) read it dynamically.
func (k *Kernel) EnableFaults(in *fault.Injector) {
	k.fault = in
	if in == nil {
		k.sim.SetInterruptHook(nil)
		return
	}
	k.sim.SetInterruptHook(func(p *sim.Proc, reason string) bool {
		return in.Interrupt(p.Now(), reason)
	})
}

// FaultInjector returns the attached fault injector, or nil.
func (k *Kernel) FaultInjector() *fault.Injector { return k.fault }

// errMapInjected is the sentinel mem.Map failure the fault layer produces;
// callers surface it as ENOMEM like any other allocation failure.
var errMapInjected = fmt.Errorf("mem: injected allocation failure")

// errMapLimit is the mem.Map failure rlimit enforcement produces; callers
// surface it as ENOMEM, exactly as a real RLIMIT_AS rejection does.
var errMapLimit = fmt.Errorf("mem: mapping exceeds resource limit")

// mapHook is installed (closed over its task) as every address space's
// MapHook: fault injection first, then RLIMIT_AS over the whole mapped
// span and RLIMIT_DATA over anonymous (non-file-named) mappings. The
// fault half is inert until an injector is attached and outside simulated
// execution (boot-time image assembly must not fault); the rlimit half
// always enforces — limits default to infinity, so it costs a task
// nothing until it lowers them.
func (k *Kernel) mapHook(tk *Task, size uint64, name string) error {
	if in := k.fault; in != nil {
		if p := k.sim.Current(); p != nil {
			if out, ok := in.MemMap(p.Now(), name); ok {
				if out.Delay > 0 {
					p.Advance(out.Delay)
				}
				if out.Errno != 0 {
					return errMapInjected
				}
			}
		}
	}
	span := mem.PageAlign(size)
	if lim := tk.rlimits[RLimitAS].Cur; lim != RLimInfinity && tk.mem.MappedBytes()+span > lim {
		k.countRlimitHit()
		return errMapLimit
	}
	if lim := tk.rlimits[RLimitData].Cur; lim != RLimInfinity && len(name) > 0 && name[0] != '/' {
		var anon uint64
		for _, r := range tk.mem.Regions() {
			if len(r.Name) == 0 || r.Name[0] != '/' {
				anon += r.Size
			}
		}
		if anon+span > lim {
			k.countRlimitHit()
			return errMapLimit
		}
	}
	return nil
}

// countRlimitHit bumps the rlimit-enforcement counter.
func (k *Kernel) countRlimitHit() {
	if tr := k.tracer; tr != nil {
		tr.Count(trace.CounterRlimitHits, 1)
	}
}

// bindMemHooks points a task's address-space hooks at its owner: the map
// hook enforces faults and rlimits for this task, the footprint hook
// feeds the memorystatus ladder. Fork replaces the child's address space
// wholesale, so forkInternal re-binds.
func (k *Kernel) bindMemHooks(tk *Task) {
	tk.mem.MapHook = func(size uint64, name string) error {
		return k.mapHook(tk, size, name)
	}
	tk.mem.FootprintHook = func(delta int64) {
		k.memstat.footprintDelta(tk, delta)
	}
}

// OnTaskExit registers a hook run for every task exit, after the task's
// fds and mappings are released but before it turns zombie.
func (k *Kernel) OnTaskExit(h func(*Thread)) {
	k.exitHooks = append(k.exitHooks, h)
}

// SetExceptionBridge installs the Mach exception bridge consulted before
// fatal default dispositions on iOS-persona threads (see ExceptionBridge).
func (k *Kernel) SetExceptionBridge(b ExceptionBridge) { k.excBridge = b }

// Zombies returns the pids of unreaped zombie tasks, sorted — test and
// leak-check support.
func (k *Kernel) Zombies() []int {
	var out []int
	for pid, tk := range k.tasks {
		if tk.state == taskZombie {
			out = append(out, pid)
		}
	}
	sort.Ints(out)
	return out
}

// PersonaAware reports whether the kernel tracks per-thread personas
// (Cider only).
func (k *Kernel) PersonaAware() bool { return k.profile == ProfileCider }

// NativePersona is the persona whose ABI matches the kernel natively.
func (k *Kernel) NativePersona() persona.Kind {
	if k.profile == ProfileXNUNative {
		return persona.IOS
	}
	return persona.Android
}

// RegisterBinFmt appends a binary-format loader; exec probes loaders in
// registration order, as Linux binfmt handlers chain.
func (k *Kernel) RegisterBinFmt(b BinFmt) {
	k.binfmts = append(k.binfmts, b)
}

// SetSyscallTable installs the dispatch table for a persona. The Cider
// kernel "maintains one or more syscall dispatch tables for each persona,
// and switches among them based on the persona of the calling thread"
// (Section 4.1).
func (k *Kernel) SetSyscallTable(kind persona.Kind, t *SyscallTable) {
	k.tables[kind] = t
}

// SyscallTableFor returns the dispatch table serving a persona.
func (k *Kernel) SyscallTableFor(kind persona.Kind) *SyscallTable {
	return k.tables[kind]
}

// Task returns the task with the given pid, or nil.
func (k *Kernel) Task(pid int) *Task { return k.tasks[pid] }

// Tasks returns the number of live tasks.
func (k *Kernel) Tasks() int { return len(k.tasks) }

// SetExtension attaches duct-taped subsystem state to the kernel image.
func (k *Kernel) SetExtension(name string, v any) { k.extensions[name] = v }

// Extension retrieves duct-taped subsystem state.
func (k *Kernel) Extension(name string) (any, bool) {
	v, ok := k.extensions[name]
	return v, ok
}

// Device framework ------------------------------------------------------

// Device is a kernel device-framework object (the Linux side of
// Section 5.1's device bridge).
type Device interface {
	vfs.Device
	// Open produces a File for a /dev node open.
	Open(t *Thread) (File, Errno)
}

// AddDevice registers a device, creates its /dev node, and fires the
// device-add hooks ("a small hook in the Linux device_add function",
// Section 5.1).
func (k *Kernel) AddDevice(dev Device) error {
	name := dev.DevName()
	if _, ok := k.devices[name]; ok {
		return fmt.Errorf("kernel: device %q already registered", name)
	}
	k.devices[name] = dev
	if err := k.root.MkdirAll("/dev"); err != nil {
		return err
	}
	if err := k.root.Mknod("/dev/"+name, dev); err != nil {
		return err
	}
	for _, h := range k.deviceAddHooks {
		h(dev)
	}
	return nil
}

// OnDeviceAdd registers a hook called for every device added afterwards
// and, immediately, for every device already present.
func (k *Kernel) OnDeviceAdd(h func(Device)) {
	k.deviceAddHooks = append(k.deviceAddHooks, h)
	for _, d := range k.devices {
		h(d)
	}
}

// FindDevice returns a registered device by name.
func (k *Kernel) FindDevice(name string) (Device, bool) {
	d, ok := k.devices[name]
	return d, ok
}

// DeviceNames lists registered devices (sorted by the caller if needed).
func (k *Kernel) DeviceNames() []string {
	out := make([]string, 0, len(k.devices))
	for n := range k.devices {
		out = append(out, n)
	}
	return out
}
