package kernel

import (
	"fmt"

	"repro/internal/elfx"
	"repro/internal/mem"
	"repro/internal/persona"
	"repro/internal/prog"
)

// BinFmt is a binary-format loader, mirroring Linux's binfmt handler chain.
// Load must return ENOEXEC — without touching the task's address space —
// when data is not in its format, so exec can probe the next loader.
type BinFmt interface {
	// Name identifies the loader ("binfmt_elf", "binfmt_macho").
	Name() string
	// Recognize reports whether data is in this loader's format; exec uses
	// it to decide the point of no return before destroying the old image.
	Recognize(data []byte) bool
	// Load maps the image into the calling thread's task and returns its
	// entry function.
	Load(t *Thread, path string, data []byte, argv []string) (prog.Func, Errno)
}

// ELFLoader is the domestic binary loader (binfmt_elf). Dynamically linked
// executables are started through the user-space linker program registered
// under LinkerKey; static executables jump straight to their entry payload.
type ELFLoader struct {
	// LinkerKey is the registry key of the user-space dynamic linker
	// (Android's /system/bin/linker, provided by internal/bionic). Empty
	// means only static binaries can run.
	LinkerKey string
}

// Name implements BinFmt.
func (l *ELFLoader) Name() string { return "binfmt_elf" }

// Recognize implements BinFmt.
func (l *ELFLoader) Recognize(data []byte) bool {
	_, err := elfx.Parse(data)
	return err == nil
}

// Load implements BinFmt.
func (l *ELFLoader) Load(t *Thread, path string, data []byte, argv []string) (prog.Func, Errno) {
	f, err := elfx.Parse(data)
	if err != nil {
		if _, bad := err.(*elfx.ErrBadMagic); bad {
			return nil, ENOEXEC
		}
		return nil, ENOEXEC
	}
	if f.Type != elfx.TypeExec && f.Type != elfx.TypeDyn {
		return nil, ENOEXEC
	}
	k := t.k
	// Tag the thread with the domestic persona — the mirror image of the
	// Mach-O loader's iOS tagging, so an iOS process exec'ing an Android
	// binary ends up with the right kernel ABI. As in the Mach-O loader,
	// every failure past this point must restore the caller's persona and
	// unmap whatever was mapped so far.
	prevPersona := t.Persona.Current()
	if k.PersonaAware() {
		t.Persona.Switch(persona.Android)
	}
	var mapped []uint64
	rollback := func() {
		for i := len(mapped) - 1; i >= 0; i-- {
			t.task.mem.Unmap(mapped[i])
		}
		t.Persona.Switch(prevPersona)
	}
	// Map the loadable segments.
	for i, seg := range f.Segments {
		t.charge(k.costs.SegmentMap)
		prot := elfProt(seg.Flags)
		size := uint64(seg.MemSize)
		if size < uint64(len(seg.Data)) {
			size = uint64(len(seg.Data))
		}
		if size == 0 {
			continue
		}
		r, merr := t.task.mem.Map(0, size, prot, fmt.Sprintf("%s[%d]", path, i), false)
		if merr != nil {
			rollback()
			return nil, ENOMEM
		}
		mapped = append(mapped, r.Base)
		if len(seg.Data) > 0 {
			copy(r.Backing().Bytes(), seg.Data)
		}
	}
	// Map a stack.
	if r, merr := t.task.mem.Map(0, 1<<20, mem.ProtRead|mem.ProtWrite, "[stack]", false); merr != nil {
		rollback()
		return nil, ENOMEM
	} else {
		mapped = append(mapped, r.Base)
	}

	entryKey, perr := textPayload(f)
	if perr != nil {
		rollback()
		return nil, ENOEXEC
	}

	if len(f.Needed) > 0 {
		// Dynamic executable: run through the user-space linker, which
		// loads DT_NEEDED libraries and then calls the program entry.
		if l.LinkerKey == "" {
			rollback()
			return nil, ENOEXEC
		}
		linker, ok := k.registry.Lookup(l.LinkerKey)
		if !ok {
			rollback()
			return nil, ENOEXEC
		}
		needed := append([]string(nil), f.Needed...)
		return func(c *prog.Call) uint64 {
			lc := &prog.Call{Ctx: c.Ctx, Args: c.Args}
			// The linker contract: Ctx carries the thread; the linker
			// reads its work order from the task's user data.
			th := c.Ctx.(*Thread)
			th.task.SetUserData("linker.needed", needed)
			th.task.SetUserData("linker.entry", entryKey)
			return linker(lc)
		}, OK
	}

	entry, ok := k.registry.Lookup(entryKey)
	if !ok {
		rollback()
		return nil, ENOEXEC
	}
	return entry, OK
}

// textPayload extracts the program key from the first executable segment.
func textPayload(f *elfx.File) (string, error) {
	for _, seg := range f.Segments {
		if seg.Flags&elfx.FlagX != 0 && len(seg.Data) > 0 {
			return prog.ParseTextPayload(seg.Data)
		}
	}
	return "", fmt.Errorf("kernel: no executable segment payload")
}

func elfProt(flags uint32) mem.Prot {
	var p mem.Prot
	if flags&elfx.FlagR != 0 {
		p |= mem.ProtRead
	}
	if flags&elfx.FlagW != 0 {
		p |= mem.ProtWrite
	}
	if flags&elfx.FlagX != 0 {
		p |= mem.ProtExec
	}
	return p
}
