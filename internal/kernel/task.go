package kernel

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/mem"
	"repro/internal/persona"
	"repro/internal/prog"
	"repro/internal/sim"
)

// taskState is a process lifecycle state.
type taskState int

const (
	taskRunning taskState = iota
	taskZombie
	taskReaped
)

// Task is a process: address space, descriptor table, threads, children.
type Task struct {
	pid    int
	parent *Task
	k      *Kernel

	children map[int]*Task
	mem      *mem.AddressSpace
	fds      *FDTable
	threads  map[int]*Thread
	nextTID  int

	// path and argv describe the current executable image.
	path string
	argv []string

	state      taskState
	exitStatus int
	// childEvents wakes the parent's wait4.
	childEvents *sim.WaitQueue

	// sigActions maps canonical (Linux) signal numbers to handlers.
	sigActions map[int]*SigAction

	// userData carries per-process user-space runtime state (libc atfork
	// and atexit handler lists, dyld's loaded-image table). The kernel
	// never interprets it.
	userData map[string]any

	// rlimits holds the POSIX resource limits, canonical numbering.
	// Inherited across fork, preserved across exec.
	rlimits [numRLimits]RLimit
}

// PID returns the process id.
func (tk *Task) PID() int { return tk.pid }

// PPID returns the parent process id (0 for init).
func (tk *Task) PPID() int {
	if tk.parent == nil {
		return 0
	}
	return tk.parent.pid
}

// Kernel returns the owning kernel.
func (tk *Task) Kernel() *Kernel { return tk.k }

// Mem returns the task's address space.
func (tk *Task) Mem() *mem.AddressSpace { return tk.mem }

// FDs returns the descriptor table.
func (tk *Task) FDs() *FDTable { return tk.fds }

// Path returns the executable path.
func (tk *Task) Path() string { return tk.path }

// Argv returns the exec arguments.
func (tk *Task) Argv() []string { return tk.argv }

// ExitStatus returns the exit status (valid once the task is a zombie).
func (tk *Task) ExitStatus() int { return tk.exitStatus }

// Zombie reports whether the task has exited but not been reaped.
func (tk *Task) Zombie() bool { return tk.state == taskZombie }

// UserData returns the value stored under key by user-space runtimes.
func (tk *Task) UserData(key string) (any, bool) {
	v, ok := tk.userData[key]
	return v, ok
}

// SetUserData stores per-process user-space runtime state.
func (tk *Task) SetUserData(key string, v any) { tk.userData[key] = v }

// MainThread returns the lowest-numbered live thread.
func (tk *Task) MainThread() *Thread {
	var best *Thread
	for _, th := range tk.threads {
		if best == nil || th.tid < best.tid {
			best = th
		}
	}
	return best
}

// Threads returns the number of live threads.
func (tk *Task) Threads() int { return len(tk.threads) }

// Thread is a kernel thread with its own persona state and simulated
// execution context.
type Thread struct {
	tid  int
	task *Task
	k    *Kernel
	proc *sim.Proc

	// Persona is the thread's persona state: current persona plus TLS
	// areas for every persona (Section 4.3).
	Persona *persona.State

	// sigPending queues canonical signal numbers for this thread.
	sigPending []int
	// inSyscall marks the thread as blockable-in-kernel for EINTR wakeups.
	inSyscall bool
}

// TID returns the thread id (unique within the kernel).
func (t *Thread) TID() int { return t.tid }

// Task returns the owning process.
func (t *Thread) Task() *Task { return t.task }

// Kernel returns the owning kernel.
func (t *Thread) Kernel() *Kernel { return t.k }

// Proc returns the simulated execution context.
func (t *Thread) Proc() *sim.Proc { return t.proc }

// charge adds virtual time to the thread.
func (t *Thread) charge(d time.Duration) { t.proc.Advance(d) }

// Charge exposes cost charging to user-space runtimes (libc, dyld,
// libraries) that model their own compute.
func (t *Thread) Charge(d time.Duration) { t.charge(d) }

// Compute charges n operations of CPU op class, scaled by the executing
// image's toolchain (set via SetToolchainScale at load time).
func (t *Thread) Compute(d time.Duration) { t.charge(d) }

// Now returns the thread's virtual clock.
func (t *Thread) Now() time.Duration { return t.proc.Now() }

// newTask allocates a process shell (no threads yet).
func (k *Kernel) newTask(parent *Task) *Task {
	tk := &Task{
		pid:         k.nextPID,
		parent:      parent,
		k:           k,
		children:    make(map[int]*Task),
		mem:         mem.NewAddressSpace(),
		fds:         NewFDTable(),
		threads:     make(map[int]*Thread),
		childEvents: sim.NewWaitQueue("wait4"),
		sigActions:  make(map[int]*SigAction),
		userData:    make(map[string]any),
		rlimits:     defaultRLimits(),
	}
	// Route mapping requests through the fault + rlimit hook and footprint
	// changes into memorystatus (fault state is read dynamically, so
	// enabling faults after boot still covers existing tasks' children).
	k.bindMemHooks(tk)
	tk.fds.onLimit = k.countRlimitHit
	k.nextPID++
	k.tasks[tk.pid] = tk
	if parent != nil {
		parent.children[tk.pid] = tk
	}
	return tk
}

// newThread attaches a thread shell to a task; the caller provides the
// sim.Proc.
func (tk *Task) newThread(initial persona.Kind) *Thread {
	tk.nextTID++
	t := &Thread{
		tid:     tk.pid*1000 + tk.nextTID,
		task:    tk,
		k:       tk.k,
		Persona: persona.NewState(initial, uint64(tk.pid*1000+tk.nextTID)),
	}
	tk.threads[t.tid] = t
	return t
}

// StartProcess creates a new process running the executable at path and
// schedules it. It is the kernel-side of "launchd starts an app": no fork
// semantics, used for init-style process creation and tests. The returned
// task is scheduled but has not run yet.
func (k *Kernel) StartProcess(path string, argv []string) (*Task, error) {
	tk := k.newTask(nil)
	tk.path = path
	tk.argv = argv
	t := tk.newThread(k.NativePersona())
	t.proc = k.sim.Spawn(fmt.Sprintf("pid%d:%s", tk.pid, path), func(p *sim.Proc) {
		status := int(t.runExec(path, argv))
		t.exitTask(status)
	})
	return tk, nil
}

// SpawnThread creates an additional thread in the calling thread's task —
// the primitive behind pthread_create and Cider's eventpump thread
// (Section 5.2). The child inherits the caller's persona.
func (t *Thread) SpawnThread(name string, fn func(*Thread)) *Thread {
	nt := t.task.newThread(t.Persona.Current())
	nt.Persona = t.Persona.Clone(uint64(nt.tid))
	nt.proc = t.k.sim.Spawn(fmt.Sprintf("pid%d/%s", t.task.pid, name), func(p *sim.Proc) {
		fn(nt)
		delete(nt.task.threads, nt.tid)
	})
	return nt
}

// UserDataCloner lets user-space runtime state stored via SetUserData be
// deep-copied across fork; values without it are shared by reference.
type UserDataCloner interface {
	// CloneUserData returns the child process's copy.
	CloneUserData() any
}

// forkInternal implements the fork syscall: duplicate the address space
// (charging PTE copies), descriptor table, signal dispositions and persona
// state, then schedule the child running childFn. Go cannot return twice
// from one call, so the child body is passed as a closure — the libc
// wrapper preserves the POSIX calling convention for programs.
func (t *Thread) forkInternal(childFn func(*Thread)) (int, Errno) {
	k, tk := t.k, t.task
	costs := k.costs

	child := k.newTask(tk)
	child.path = tk.path
	child.argv = tk.argv

	// Duplicate the page tables; this is the dominant fork cost for iOS
	// processes (90 MB of dylib mappings ≈ 23k PTEs ≈ 1 ms, §6.2).
	childMem, ptes := tk.mem.Fork()
	child.mem = childMem
	// Fork replaced the shell address space newTask created, and the clone
	// carries the parent's hooks: re-bind so rlimit checks and footprint
	// attribution target the child. The copied footprint needs no explicit
	// adoption — memorystatus reads usage from the spaces on demand. The
	// resource limits themselves are inherited, POSIX fork semantics.
	k.bindMemHooks(child)
	child.rlimits = tk.rlimits
	t.charge(costs.ForkBase + time.Duration(ptes)*costs.PTECopy)

	// Cider initializes the child's Mach task port at fork ("some extra
	// work in Mach IPC initialization", §6.2) — negligible but real.
	if k.profile == ProfileCider {
		t.charge(costs.MachPortInit)
	}

	child.fds = tk.fds.Fork()
	for sig, act := range tk.sigActions {
		cp := *act
		child.sigActions[sig] = &cp
	}
	// User-space runtime state (libc handler lists, dyld image tables)
	// lives in the copied address space, so it survives fork; values that
	// implement UserDataCloner are deep-copied, others shared.
	for key, v := range tk.userData {
		if c, ok := v.(UserDataCloner); ok {
			child.userData[key] = c.CloneUserData()
		} else {
			child.userData[key] = v
		}
	}

	ct := child.newThread(t.Persona.Current())
	ct.Persona = t.Persona.Clone(uint64(ct.tid))
	ct.proc = k.sim.Spawn(fmt.Sprintf("pid%d:%s", child.pid, child.path), func(p *sim.Proc) {
		childFn(ct)
		// A child body that returns without exiting exits cleanly, the way
		// falling off main does.
		ct.exitTask(0)
	})
	return child.pid, OK
}

// runExec loads the binary at path and runs its entry function, returning
// the program's exit status. Called on a fresh process or from exec.
func (t *Thread) runExec(path string, argv []string) uint64 {
	entry, errno := t.loadImage(path, argv)
	if errno != OK {
		return 255
	}
	return entry(&prog.Call{Ctx: t})
}

// loadImage runs the binfmt chain for path and prepares the task's image.
func (t *Thread) loadImage(path string, argv []string) (prog.Func, Errno) {
	k := t.k
	node, err := k.root.Lookup(path)
	if err != nil {
		return nil, ErrnoFromVFS(err)
	}
	if node.IsDir() {
		return nil, EISDIR
	}
	data := node.Data()
	t.charge(k.device.Storage.ReadTime(int64(len(data))))

	t.task.path = path
	t.task.argv = argv
	for _, b := range k.binfmts {
		t.charge(k.costs.BinfmtProbe)
		entry, errno := b.Load(t, path, data, argv)
		if errno == ENOEXEC {
			continue // not this loader's format; try the next
		}
		if errno != OK {
			return nil, errno
		}
		return entry, OK
	}
	return nil, ENOEXEC
}

// execInternal implements execve: replace the image and run the new entry.
// On success it never returns — the new program runs and the process exits
// with its status. On failure the old image is untouched (as long as the
// failure happened before the point of no return, which the binfmt
// contract guarantees: loaders must not mutate the address space before
// validating the format).
func (t *Thread) execInternal(path string, argv []string) Errno {
	k := t.k
	t.charge(k.costs.ExecBase)
	// Validate path and format before destroying the old image, so a
	// failed exec returns to the caller with the process intact.
	node, err := k.root.Lookup(path)
	if err != nil {
		return ErrnoFromVFS(err)
	}
	if node.IsDir() {
		return EISDIR
	}
	recognized := false
	for _, b := range k.binfmts {
		if b.Recognize(node.Data()) {
			recognized = true
			break
		}
	}
	if !recognized {
		return ENOEXEC
	}
	// Point of no return: tear down the old image. A 90 MB iOS process
	// pays per-PTE teardown here, part of the cost of exec'ing out of an
	// iOS binary (§6.2).
	t.charge(time.Duration(t.task.mem.PTECount()) * k.costs.ExecTeardown)
	t.task.mem.UnmapAll()
	for key := range t.task.userData {
		delete(t.task.userData, key)
	}
	status := int(t.runExec(path, argv))
	t.exitTask(status)
	return OK // unreachable
}

// exitTask implements _exit for the calling thread's process: tear down
// descriptors and memory, make the task a zombie, wake wait4 parents, and
// terminate every thread.
func (t *Thread) exitTask(status int) {
	k, tk := t.k, t.task
	if tk.state != taskRunning {
		t.proc.Exit()
	}
	t.charge(k.costs.ExitBase)
	tk.fds.CloseAll(t)
	tk.mem.UnmapAll()
	for _, h := range k.exitHooks {
		h(t)
	}
	k.memstat.taskExit(tk)
	tk.state = taskZombie
	tk.exitStatus = status
	// Children that already died waiting for this parent's wait4 are
	// reaped here (lowest pid first, for determinism) — otherwise they
	// would linger as zombies forever. Running children are reparented to
	// nobody and self-reap on exit.
	pids := make([]int, 0, len(tk.children))
	for pid := range tk.children {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		c := tk.children[pid]
		if c.state == taskZombie {
			c.state = taskReaped
			delete(k.tasks, c.pid)
			continue
		}
		c.parent = nil
	}
	tk.children = make(map[int]*Task)
	if tk.parent != nil {
		// Signal the parent (SIGCHLD) and wake its wait4.
		k.postSignal(tk.parent, sigCHLD)
		tk.parent.childEvents.WakeAll(t.proc, sim.WakeNormal)
	} else {
		// No parent to reap us.
		tk.state = taskReaped
		delete(k.tasks, tk.pid)
	}
	delete(tk.threads, t.tid)
	// Terminate sibling threads.
	for _, other := range tk.threads {
		other.proc.Wake(other.proc, sim.WakeInterrupted)
		delete(tk.threads, other.tid)
	}
	t.proc.Exit()
}

// waitInternal implements wait4(pid): block until the chosen child (any
// child when pid <= 0) exits, then reap it and return its pid and status.
func (t *Thread) waitInternal(pid int) (int, int, Errno) {
	tk := t.task
	t.charge(t.k.costs.WaitBase)
	for {
		// With several simultaneous zombies the reaped child must not
		// depend on Go map iteration order: reap the lowest-pid zombie.
		found := false
		reap := -1
		for _, c := range tk.children {
			if pid > 0 && c.pid != pid {
				continue
			}
			found = true
			if c.state == taskZombie && (reap < 0 || c.pid < reap) {
				reap = c.pid
			}
		}
		if reap >= 0 {
			c := tk.children[reap]
			c.state = taskReaped
			delete(tk.children, c.pid)
			delete(t.k.tasks, c.pid)
			return c.pid, c.exitStatus, OK
		}
		if !found {
			return -1, 0, ECHILD
		}
		if tag := tk.childEvents.Wait(t.proc); tag == sim.WakeInterrupted {
			return -1, 0, EINTR
		}
	}
}
