package kernel

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/prog"
)

// Memorystatus ladder tests: victim selection walks (band DESC, footprint
// DESC, pid ASC), essential tasks are never victims, the foreground dies
// only when it is all that is left, per-band highwater ceilings kill the
// offender alone, watermark notifications are edge-triggered, and the
// jetsam record is consumed exactly once by the supervisor.

// hogSpec describes one memory hog the victim-order test boots: it
// assigns itself a band, materializes pages resident bytes, then sleeps
// until jetsam (or the end of the schedule) takes it.
type hogSpec struct {
	path  string
	band  Band
	pages int
}

func TestJetsamVictimOrder(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	ms := e.k.Memorystatus()
	hogs := []hogSpec{
		{"/bin/idle-small", BandIdle, 1},
		{"/bin/idle-big", BandIdle, 4},
		{"/bin/daemon-mid", BandDaemon, 2},
		{"/bin/fg-app", BandForeground, 3},
	}
	for _, h := range hogs {
		h := h
		e.install(t, h.path, h.path, func(c *prog.Call) uint64 {
			th := c.Ctx.(*Thread)
			ms.SetBand(th.task, h.band)
			r, err := th.task.mem.Map(0, uint64(h.pages)*mem.PageSize, mem.ProtRead|mem.ProtWrite, "[hog]", false)
			if err != nil {
				t.Errorf("%s map: %v", h.path, err)
				return 1
			}
			r.Backing().Bytes()
			th.Proc().Sleep(10 * time.Millisecond)
			return 0
		})
	}
	pids := make(map[string]int)
	var order []int
	e.install(t, "/bin/reaper", "reaper", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		ms.SetEssential(th.task)
		th.Proc().Sleep(time.Millisecond) // let every hog inflate
		for ms.killOne() {
			for pid := range ms.jetsammed {
				seen := false
				for _, p := range order {
					seen = seen || p == pid
				}
				if !seen {
					order = append(order, pid)
				}
			}
		}
		return 0
	})
	for _, h := range hogs {
		tk, err := e.k.StartProcess(h.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		pids[h.path] = tk.PID()
	}
	reaper, err := e.k.StartProcess("/bin/reaper", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}

	// Band DESC (idle before daemon before foreground), footprint DESC
	// within the band, and the essential reaper untouched.
	want := []int{
		pids["/bin/idle-big"],   // idle band, 4 pages
		pids["/bin/idle-small"], // idle band, 1 page
		pids["/bin/daemon-mid"], // daemon band
		pids["/bin/fg-app"],     // foreground, only once nothing else was left
	}
	if len(order) != len(want) {
		t.Fatalf("kill order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("kill order %v, want %v", order, want)
		}
	}
	if reaper.ExitStatus() != 0 {
		t.Fatalf("essential reaper exited %d", reaper.ExitStatus())
	}
	total, perBand := ms.Kills()
	if total != 4 || perBand[BandIdle] != 2 || perBand[BandDaemon] != 1 ||
		perBand[BandBackground] != 0 || perBand[BandForeground] != 1 {
		t.Fatalf("kill counters total=%d perBand=%v", total, perBand)
	}

	// The supervisor-facing record is consumed exactly once.
	if b, ok := ms.TakeJetsam(pids["/bin/daemon-mid"]); !ok || b != BandDaemon {
		t.Fatalf("TakeJetsam = %v, %v", b, ok)
	}
	if _, ok := ms.TakeJetsam(pids["/bin/daemon-mid"]); ok {
		t.Fatal("TakeJetsam consumed the record twice")
	}
	if _, ok := ms.TakeJetsam(reaper.PID()); ok {
		t.Fatal("TakeJetsam reported the surviving reaper as jetsammed")
	}

	// Every victim left a jetsam report beside the crash logs.
	nodes, err := e.fs.ReadDir(jetsamLogDir)
	if err != nil {
		t.Fatalf("ReadDir(%s): %v", jetsamLogDir, err)
	}
	reports := 0
	for _, n := range nodes {
		if strings.HasSuffix(n.Name(), ".jetsam") {
			reports++
			if !strings.Contains(string(n.Data()), "reason=jetsam") {
				t.Fatalf("report %s missing reason: %q", n.Name(), n.Data())
			}
		}
	}
	if reports != 4 {
		t.Fatalf("jetsam reports = %d, want 4", reports)
	}
	if err := e.k.LeakCheck(); err != nil {
		t.Fatalf("leak after jetsam storm: %v", err)
	}
}

func TestJetsamHighwaterKillsOffenderAlone(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	ms := e.k.Memorystatus()
	// Shrink the budget so the idle ceiling (budget/32) is 2 pages — the
	// watermarks stay far above every mapping in this test, isolating the
	// per-task highwater path from the global ladder.
	ms.budget = 64 * mem.PageSize
	ms.warn = 44 * mem.PageSize
	ms.critical = 54 * mem.PageSize
	if got := ms.BandLimit(BandIdle); got != 2*mem.PageSize {
		t.Fatalf("idle band limit = %d, want %d", got, 2*mem.PageSize)
	}
	e.install(t, "/bin/bystander", "bystander", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		ms.SetBand(th.task, BandIdle)
		r, _ := th.task.mem.Map(0, mem.PageSize, mem.ProtRead|mem.ProtWrite, "[small]", false)
		r.Backing().Bytes()
		th.Proc().Sleep(5 * time.Millisecond)
		return 0
	})
	e.install(t, "/bin/overgrower", "overgrower", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		ms.SetBand(th.task, BandIdle)
		for i := 0; i < 3; i++ { // third page crosses the 2-page ceiling
			r, _ := th.task.mem.Map(0, mem.PageSize, mem.ProtRead|mem.ProtWrite, "[grow]", false)
			r.Backing().Bytes()
		}
		th.Proc().Sleep(5 * time.Millisecond)
		return 0
	})
	by, err := e.k.StartProcess("/bin/bystander", nil)
	if err != nil {
		t.Fatal(err)
	}
	og, err := e.k.StartProcess("/bin/overgrower", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := ms.TakeJetsam(og.PID()); !ok {
		t.Fatal("overgrower was not highwater-killed")
	}
	if _, ok := ms.TakeJetsam(by.PID()); ok {
		t.Fatal("highwater kill took the in-limit bystander too")
	}
	total, _ := ms.Kills()
	if total != 1 {
		t.Fatalf("kills = %d, want 1 (offender alone)", total)
	}
	if by.ExitStatus() != 0 {
		t.Fatalf("bystander exited %d", by.ExitStatus())
	}
}

func TestPressureNotifyEdgeTriggered(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	ms := e.k.Memorystatus()
	// Watermarks five/eight pages up; the ceiling stays out of reach so no
	// highwater kill interferes.
	ms.budget = 1 << 30
	ms.warn = 5 * mem.PageSize
	ms.critical = 8 * mem.PageSize
	var levels []PressureLevel
	e.install(t, "/bin/grower", "grower", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		ms.OnPressure(th.task, func(l PressureLevel) { levels = append(levels, l) })
		// 5 pages on top of the one text page: crosses warn (5), stays
		// below critical (8).
		for i := 0; i < 5; i++ {
			r, _ := th.task.mem.Map(0, mem.PageSize, mem.ProtRead|mem.ProtWrite, "[grow]", false)
			r.Backing().Bytes()
		}
		return 0
	})
	e.run(t, "/bin/grower", nil)
	if len(levels) != 1 || levels[0] != PressureWarn {
		t.Fatalf("notifications = %v, want exactly one warn (edge-triggered)", levels)
	}
}
