package kernel

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/macho"
	"repro/internal/persona"
	"repro/internal/prog"
)

// imageSnap captures the task-visible state the binfmt contract says a
// failed Load must leave unchanged.
type imageSnap struct {
	persona persona.Kind
	regions string
	fds     int
}

func snapImage(th *Thread) imageSnap {
	return imageSnap{
		persona: th.Persona.Current(),
		regions: th.Task().Mem().Maps(),
		fds:     th.Task().FDs().Count(),
	}
}

// buildMachO returns MachOExecutable bytes for the test app.
func buildMachO(t *testing.T, key string) []byte {
	t.Helper()
	b, err := prog.MachOExecutable(key, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// buildMachOGarbageText returns a well-formed Mach-O whose __TEXT payload
// is not a program key, so the loader fails with ENOEXEC after it has
// already mapped segments.
func buildMachOGarbageText(t *testing.T) []byte {
	t.Helper()
	f := &macho.File{
		CPUType:    macho.CPUTypeARM,
		CPUSubtype: macho.CPUSubtypeARMV7,
		FileType:   macho.TypeExecute,
		Dylinker:   "/usr/lib/dyld",
		HasEntry:   true,
		Segments: []*macho.Segment{
			{Name: "__TEXT", VMAddr: 0x1000, Prot: macho.ProtRead | macho.ProtExecute,
				Data: []byte("this is not a text payload")},
			{Name: "__DATA", VMAddr: 0x100000, VMSize: 0x4000,
				Prot: macho.ProtRead | macho.ProtWrite},
		},
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMachOLoadFailureRollsBack is the exec-atomicity regression test: a
// Mach-O Load that fails at any point after the persona switch — ENOMEM
// injected at each successive Map call, a garbage __TEXT payload, a missing
// dylinker — must restore the caller's persona and unmap every segment it
// mapped, leaving persona, mappings, and the fd table exactly as they were.
func TestMachOLoadFailureRollsBack(t *testing.T) {
	e := newEnv(t, ProfileCider)
	machoGood := buildMachO(t, "app-main")
	machoGarbage := buildMachOGarbageText(t)
	e.reg.MustRegister("dyld-stub", func(c *prog.Call) uint64 { return 0 })

	cases := []struct {
		name   string
		data   []byte
		loader *MachOLoader
		rule   *fault.Rule // nil = no injection
		errno  Errno
	}{
		{"enomem-at-text", machoGood, &MachOLoader{DyldFallbackKey: "dyld-stub"},
			&fault.Rule{Op: fault.OpMemMap, Match: "/iosapp __TEXT", Nth: 1, Errno: int(ENOMEM)}, ENOMEM},
		{"enomem-at-data", machoGood, &MachOLoader{DyldFallbackKey: "dyld-stub"},
			&fault.Rule{Op: fault.OpMemMap, Match: "/iosapp __DATA", Nth: 1, Errno: int(ENOMEM)}, ENOMEM},
		{"enomem-at-stack", machoGood, &MachOLoader{DyldFallbackKey: "dyld-stub"},
			&fault.Rule{Op: fault.OpMemMap, Match: "[stack]", Nth: 1, Errno: int(ENOMEM)}, ENOMEM},
		{"garbage-text-enoexec", machoGarbage, &MachOLoader{DyldFallbackKey: "dyld-stub"},
			nil, ENOEXEC},
		{"missing-dylinker", machoGood, &MachOLoader{}, nil, ENOENT},
	}

	var failures []string
	e.install(t, "/bin/runner", "runner", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		k := th.Kernel()
		for _, tc := range cases {
			if tc.rule != nil {
				k.EnableFaults(fault.NewInjector(fault.Plan{Name: tc.name, Rules: []fault.Rule{*tc.rule}}))
			} else {
				k.EnableFaults(nil)
			}
			before := snapImage(th)
			entry, errno := tc.loader.Load(th, "/iosapp", tc.data, nil)
			k.EnableFaults(nil)
			if entry != nil || errno != tc.errno {
				failures = append(failures, fmt.Sprintf("%s: Load returned (entry=%v, %v), want (nil, %v)",
					tc.name, entry != nil, errno, tc.errno))
			}
			after := snapImage(th)
			if after.persona != before.persona {
				// Restore so the rest of the test can keep making syscalls.
				th.Persona.Switch(before.persona)
				failures = append(failures, fmt.Sprintf("%s: persona leaked: %v -> %v",
					tc.name, before.persona, after.persona))
			}
			if after.regions != before.regions {
				failures = append(failures, fmt.Sprintf("%s: mappings leaked:\nbefore:\n%safter:\n%s",
					tc.name, before.regions, after.regions))
			}
			if after.fds != before.fds {
				failures = append(failures, fmt.Sprintf("%s: fd table changed: %d -> %d",
					tc.name, before.fds, after.fds))
			}
		}

		// Control: with no faults the same loader must succeed and switch
		// the persona — proving the cases above exercised the real path.
		before := snapImage(th)
		entry, errno := (&MachOLoader{DyldFallbackKey: "dyld-stub"}).Load(th, "/iosapp", machoGood, nil)
		after := snapImage(th)
		if entry == nil || errno != OK {
			failures = append(failures, fmt.Sprintf("control: clean Load failed: %v", errno))
		}
		if after.persona != persona.IOS {
			failures = append(failures, "control: clean Load did not switch persona to iOS")
		}
		th.Persona.Switch(before.persona)
		return 0
	})
	e.run(t, "/bin/runner", nil)
	for _, f := range failures {
		t.Error(f)
	}
}

// TestELFLoadFailureRollsBack covers the ELF twin: a Cider thread running
// with the iOS persona execs an ELF binary whose load fails after the
// loader switched the persona to Android; the persona and address space
// must be restored.
func TestELFLoadFailureRollsBack(t *testing.T) {
	e := newEnv(t, ProfileCider)
	static, err := prog.StaticELF("elf-main")
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := prog.DynamicELF("elf-dyn", []string{"libfoo.so"})
	if err != nil {
		t.Fatal(err)
	}
	e.reg.MustRegister("elf-main", func(c *prog.Call) uint64 { return 0 })

	var failures []string
	e.install(t, "/bin/runner2", "runner2", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		k := th.Kernel()
		// Simulate an iOS-persona caller exec'ing an Android binary.
		th.Persona.Switch(persona.IOS)
		before := snapImage(th)

		// ENOMEM injected at the ELF stack map.
		k.EnableFaults(fault.NewInjector(fault.Plan{Rules: []fault.Rule{
			{Op: fault.OpMemMap, Match: "[stack]", Nth: 1, Errno: int(ENOMEM)},
		}}))
		entry, errno := (&ELFLoader{}).Load(th, "/elfapp", static, nil)
		k.EnableFaults(nil)
		if entry != nil || errno != ENOMEM {
			failures = append(failures, fmt.Sprintf("enomem: Load returned (entry=%v, %v), want (nil, ENOMEM)", entry != nil, errno))
		}
		if got := snapImage(th); got != before {
			failures = append(failures, fmt.Sprintf("enomem: image changed: %+v -> %+v", before, got))
		}

		// Dynamic binary with no linker registered: ENOEXEC after mapping.
		entry, errno = (&ELFLoader{}).Load(th, "/elfapp", dynamic, nil)
		if entry != nil || errno != ENOEXEC {
			failures = append(failures, fmt.Sprintf("nolinker: Load returned (entry=%v, %v), want (nil, ENOEXEC)", entry != nil, errno))
		}
		if got := snapImage(th); got != before {
			failures = append(failures, fmt.Sprintf("nolinker: image changed: %+v -> %+v", before, got))
		}

		th.Persona.Switch(persona.Android)
		return 0
	})
	e.run(t, "/bin/runner2", nil)
	for _, f := range failures {
		t.Error(f)
	}
}
