package kernel

// SIGCHLD/waitpid hardening for the crash-containment work: a crashed
// child is a zombie reapable exactly once, wait4 picks zombies in
// deterministic (lowest-pid) order, and a parent exiting without waiting
// reaps its zombies on the way out — launchd must never leak zombies, and
// Kernel.LeakCheck now flags any that survive their parent.

import (
	"testing"
	"time"

	"repro/internal/prog"
)

// TestCrashedChildReapableExactlyOnce: a child killed by SIGSEGV becomes
// a zombie with status 128+11; the first wait4 reaps it and a second
// returns ECHILD — crashing must not make a child reapable twice (or not
// at all).
func TestCrashedChildReapableExactlyOnce(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var first, second SyscallRet
	var firstPID uint64
	e.install(t, "/bin/parent", "parent", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		ret := th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
			ct.Charge(time.Millisecond)
			ct.Syscall(SysKill, &SyscallArgs{I: [6]uint64{uint64(ct.task.pid), SIGSEGV}})
			ct.exitTask(0) // unreachable: the fault terminates the child
		}})
		first = th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{ret.R0}})
		firstPID = ret.R0
		second = th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{ret.R0}})
		return 0
	})
	e.run(t, "/bin/parent", nil)
	if first.Errno != OK || first.R0 != firstPID {
		t.Fatalf("first wait: pid=%d errno=%v, want pid %d", first.R0, first.Errno, firstPID)
	}
	if first.R1 != 128+SIGSEGV {
		t.Fatalf("crash status = %d, want %d", first.R1, 128+SIGSEGV)
	}
	if second.Errno != ECHILD {
		t.Fatalf("second wait errno = %v, want ECHILD", second.Errno)
	}
	if err := e.k.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestWaitReapsLowestPIDZombie: with several zombies pending, wait4(-1)
// must reap them in pid order — Go map iteration over the child set must
// never leak host randomness into which crash the supervisor observes
// first.
func TestWaitReapsLowestPIDZombie(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var order []uint64
	e.install(t, "/bin/parent", "parent", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		for i := 0; i < 3; i++ {
			status := uint64(40 + i)
			th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
				ct.exitTask(int(status))
			}})
		}
		// Let all three exit before reaping anything.
		th.Charge(time.Millisecond)
		for i := 0; i < 3; i++ {
			ret := th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{^uint64(0)}})
			if ret.Errno != OK {
				t.Errorf("wait %d: errno %v", i, ret.Errno)
				return 0
			}
			order = append(order, ret.R0)
		}
		return 0
	})
	e.run(t, "/bin/parent", nil)
	if len(order) != 3 {
		t.Fatalf("reaped %d children, want 3", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("reap order %v not ascending by pid", order)
		}
	}
}

// TestParentExitReapsZombies: a parent that exits without waiting must
// not strand its zombie children — exitTask reaps them, Zombies() is
// empty afterwards, and LeakCheck stays clean.
func TestParentExitReapsZombies(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	e.install(t, "/bin/deadbeat", "deadbeat", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		for i := 0; i < 2; i++ {
			th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
				ct.Syscall(SysKill, &SyscallArgs{I: [6]uint64{uint64(ct.task.pid), SIGBUS}})
			}})
		}
		th.Charge(time.Millisecond) // children crash while parent still lives
		return 0                    // exit without ever calling wait4
	})
	e.run(t, "/bin/deadbeat", nil)
	if z := e.k.Zombies(); len(z) != 0 {
		t.Fatalf("zombies leaked past parent exit: %v", z)
	}
	if err := e.k.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestRunningChildrenReparentedOnParentExit: children still running when
// the parent exits are reparented (not killed, not leaked); when they
// later exit nobody waits, so their teardown must be self-contained and
// leak-free.
func TestRunningChildrenReparentedOnParentExit(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	childRan := false
	e.install(t, "/bin/parent", "parent", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
			ct.Charge(5 * time.Millisecond) // outlive the parent
			childRan = true
		}})
		return 0 // parent exits first
	})
	e.run(t, "/bin/parent", nil)
	if !childRan {
		t.Fatal("orphaned child never finished")
	}
	if z := e.k.Zombies(); len(z) != 0 {
		t.Fatalf("orphan left zombies: %v", z)
	}
	if err := e.k.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}
