package kernel

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prog"
)

// rlimit syscall tests, canonical (Linux) numbering: boot defaults,
// get/set round trips, EINVAL rejection, fork inheritance, and the two
// enforcement paths — RLIMIT_NOFILE through the descriptor table and
// RLIMIT_AS/RLIMIT_DATA through the mapping hook.

func TestRlimitGetSetForkInheritance(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	type probe struct {
		defCur, defMax uint64
		badRes         Errno
		curOverMax     Errno
		childCur       uint64
	}
	var p probe
	e.install(t, "/bin/rlimits", "rlimits", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		r := th.Syscall(SysGetrlimit, &SyscallArgs{I: [6]uint64{RLimitNoFile}})
		p.defCur, p.defMax = r.R0, r.R1
		p.badRes = th.Syscall(SysGetrlimit, &SyscallArgs{I: [6]uint64{numRLimits}}).Errno
		p.curOverMax = th.Syscall(SysSetrlimit, &SyscallArgs{I: [6]uint64{RLimitNoFile, 64, 32}}).Errno
		if errno := th.Syscall(SysSetrlimit, &SyscallArgs{I: [6]uint64{RLimitNoFile, 256, 512}}).Errno; errno != OK {
			t.Errorf("setrlimit: %v", errno)
		}
		ret := th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
			cr := ct.Syscall(SysGetrlimit, &SyscallArgs{I: [6]uint64{RLimitNoFile}})
			p.childCur = cr.R0
			ct.exitTask(0)
		}})
		th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{ret.R0}})
		return 0
	})
	e.run(t, "/bin/rlimits", nil)
	if p.defCur != DefaultNoFileCur || p.defMax != DefaultNoFileMax {
		t.Fatalf("boot NOFILE = (%d, %d), want (%d, %d)", p.defCur, p.defMax, DefaultNoFileCur, DefaultNoFileMax)
	}
	if p.badRes != EINVAL {
		t.Fatalf("getrlimit(bad resource) = %v, want EINVAL", p.badRes)
	}
	if p.curOverMax != EINVAL {
		t.Fatalf("setrlimit(cur > max) = %v, want EINVAL", p.curOverMax)
	}
	if p.childCur != 256 {
		t.Fatalf("forked child NOFILE cur = %d, want inherited 256", p.childCur)
	}
}

func TestRlimitNoFileEnforcedByFDTable(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var denied, reopened Errno
	e.install(t, "/bin/fdcap", "fdcap", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		pr := th.Syscall(SysPipe, nil) // fds 0 and 1
		if pr.Errno != OK {
			t.Errorf("pipe: %v", pr.Errno)
			return 1
		}
		if errno := th.Syscall(SysSetrlimit, &SyscallArgs{I: [6]uint64{RLimitNoFile, 3, 3}}).Errno; errno != OK {
			t.Errorf("setrlimit: %v", errno)
			return 1
		}
		if r := th.Syscall(SysDup, &SyscallArgs{I: [6]uint64{pr.R0}}); r.Errno != OK || r.R0 != 2 {
			t.Errorf("dup under limit = %d, %v", r.R0, r.Errno)
		}
		denied = th.Syscall(SysDup, &SyscallArgs{I: [6]uint64{pr.R0}}).Errno
		th.Syscall(SysClose, &SyscallArgs{I: [6]uint64{2}})
		reopened = th.Syscall(SysDup, &SyscallArgs{I: [6]uint64{pr.R0}}).Errno
		for fd := uint64(0); fd < 3; fd++ {
			th.Syscall(SysClose, &SyscallArgs{I: [6]uint64{fd}})
		}
		return 0
	})
	e.run(t, "/bin/fdcap", nil)
	if denied != EMFILE {
		t.Fatalf("dup at lowered NOFILE = %v, want EMFILE", denied)
	}
	if reopened != OK {
		t.Fatalf("dup after close = %v (limit must free with the slot)", reopened)
	}
	if err := e.k.LeakCheck(); err != nil {
		t.Fatalf("leak after NOFILE exhaustion: %v", err)
	}
}

func TestRlimitASAndDataDenyMappings(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var asErr, dataErr error
	e.install(t, "/bin/memcap", "memcap", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		// RLIMIT_AS: cap total mapped bytes just above what exec already
		// mapped; the next mapping must be denied, file-backed or not.
		mapped := th.task.mem.MappedBytes()
		th.Syscall(SysSetrlimit, &SyscallArgs{I: [6]uint64{RLimitAS, mapped + mem.PageSize, mapped + mem.PageSize}})
		if _, err := th.task.mem.Map(0, 2*mem.PageSize, mem.ProtRead|mem.ProtWrite, "[heap]", false); err == nil {
			t.Error("map over RLIMIT_AS succeeded")
		} else {
			asErr = err
		}
		th.Syscall(SysSetrlimit, &SyscallArgs{I: [6]uint64{RLimitAS, RLimInfinity, RLimInfinity}})

		// RLIMIT_DATA: bounds anonymous mappings only — a file-named map
		// passes while the next anonymous one is denied.
		var anon uint64
		for _, r := range th.task.mem.Regions() {
			if len(r.Name) == 0 || r.Name[0] != '/' {
				anon += r.Size
			}
		}
		th.Syscall(SysSetrlimit, &SyscallArgs{I: [6]uint64{RLimitData, anon + mem.PageSize, anon + mem.PageSize}})
		if _, err := th.task.mem.Map(0, 2*mem.PageSize, mem.ProtRead, "/lib/fake.dylib", false); err != nil {
			t.Errorf("file-backed map hit RLIMIT_DATA: %v", err)
		}
		if _, err := th.task.mem.Map(0, 2*mem.PageSize, mem.ProtRead|mem.ProtWrite, "[heap]", false); err == nil {
			t.Error("anonymous map over RLIMIT_DATA succeeded")
		} else {
			dataErr = err
		}
		return 0
	})
	e.run(t, "/bin/memcap", nil)
	if asErr == nil || dataErr == nil {
		t.Fatalf("denials missing: as=%v data=%v", asErr, dataErr)
	}
}
