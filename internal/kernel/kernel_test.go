package kernel

import (
	"testing"
	"time"

	"repro/internal/elfx"
	"repro/internal/hw"
	"repro/internal/persona"
	"repro/internal/prog"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// testEnv bundles a booted kernel for tests.
type testEnv struct {
	sim *sim.Sim
	k   *Kernel
	fs  *vfs.FS
	reg *prog.Registry
}

func newEnv(t *testing.T, profile Profile) *testEnv {
	t.Helper()
	s := sim.New()
	fs := vfs.New()
	reg := prog.NewRegistry()
	k, err := New(s, Config{Profile: profile, Device: hw.Nexus7(), Root: fs, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	k.InstallLinuxTable()
	k.RegisterBinFmt(&ELFLoader{})
	if err := k.AddDevice(NullDevice{}); err != nil {
		t.Fatal(err)
	}
	if err := k.AddDevice(ZeroDevice{}); err != nil {
		t.Fatal(err)
	}
	return &testEnv{sim: s, k: k, fs: fs, reg: reg}
}

// install builds a static ELF executable at path whose body is fn.
func (e *testEnv) install(t *testing.T, path, key string, fn prog.Func) {
	t.Helper()
	f := &elfx.File{
		Type: elfx.TypeExec,
		Segments: []*elfx.Segment{
			{Flags: elfx.FlagR | elfx.FlagX, Data: prog.TextPayload(key)},
		},
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.fs.WriteFile(path, b); err != nil {
		t.Fatal(err)
	}
	e.reg.MustRegister(key, fn)
}

// run starts a process from path and drives the simulation to completion.
func (e *testEnv) run(t *testing.T, path string, argv []string) *Task {
	t.Helper()
	tk, err := e.k.StartProcess(path, argv)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	return tk
}

func TestStartProcessRunsEntry(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	ran := false
	e.install(t, "/bin/hello", "hello", func(c *prog.Call) uint64 {
		ran = true
		return 0
	})
	e.run(t, "/bin/hello", nil)
	if !ran {
		t.Fatal("entry did not run")
	}
}

func TestExecMissingBinary(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	tk, err := e.k.StartProcess("/bin/nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.sim.Run(); err != nil {
		t.Fatal(err)
	}
	_ = tk // process exits with status 255; nothing to assert beyond no hang
}

func TestNonELFBinaryRejected(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	e.fs.WriteFile("/bin/junk", []byte("#!not a real format"))
	var status uint64 = 12345
	e.install(t, "/bin/runner", "runner", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		ret := th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
			ct.execInternal("/bin/junk", nil)
			ct.exitTask(42) // exec failed; report
		}})
		r2 := th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{ret.R0}})
		status = r2.R1
		return 0
	})
	e.run(t, "/bin/runner", nil)
	if status != 42 {
		t.Fatalf("child status = %d, want 42 (exec must fail)", status)
	}
}

func TestGetpidGetppid(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var pid, ppid uint64
	e.install(t, "/bin/p", "p", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		pid = th.Syscall(SysGetpid, nil).R0
		ppid = th.Syscall(SysGetppid, nil).R0
		return 0
	})
	tk := e.run(t, "/bin/p", nil)
	if int(pid) != tk.PID() {
		t.Fatalf("pid = %d, want %d", pid, tk.PID())
	}
	if ppid != 0 {
		t.Fatalf("ppid = %d, want 0 (init)", ppid)
	}
}

func TestDevZeroDevNull(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var got []byte
	var wrote uint64
	e.install(t, "/bin/devs", "devs", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		zfd := th.Syscall(SysOpen, &SyscallArgs{Path: "/dev/zero"})
		buf := []byte{9, 9, 9, 9}
		th.Syscall(SysRead, &SyscallArgs{I: [6]uint64{zfd.R0}, Buf: buf})
		got = buf
		nfd := th.Syscall(SysOpen, &SyscallArgs{Path: "/dev/null"})
		w := th.Syscall(SysWrite, &SyscallArgs{I: [6]uint64{nfd.R0}, Buf: []byte("discard")})
		wrote = w.R0
		th.Syscall(SysClose, &SyscallArgs{I: [6]uint64{zfd.R0}})
		th.Syscall(SysClose, &SyscallArgs{I: [6]uint64{nfd.R0}})
		return 0
	})
	e.run(t, "/bin/devs", nil)
	for _, b := range got {
		if b != 0 {
			t.Fatalf("read from /dev/zero = %v", got)
		}
	}
	if wrote != 7 {
		t.Fatalf("write to /dev/null = %d", wrote)
	}
}

func TestFileCreateWriteReadUnlink(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var readBack []byte
	var unlinkErr Errno
	e.install(t, "/bin/f", "f", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		fd := th.Syscall(SysCreat, &SyscallArgs{Path: "/tmp/x"})
		if fd.Errno != OK {
			t.Errorf("creat: %v", fd.Errno)
		}
		th.Syscall(SysWrite, &SyscallArgs{I: [6]uint64{fd.R0}, Buf: []byte("payload")})
		th.Syscall(SysClose, &SyscallArgs{I: [6]uint64{fd.R0}})
		fd2 := th.Syscall(SysOpen, &SyscallArgs{Path: "/tmp/x"})
		buf := make([]byte, 16)
		n := th.Syscall(SysRead, &SyscallArgs{I: [6]uint64{fd2.R0}, Buf: buf})
		readBack = buf[:n.R0]
		th.Syscall(SysClose, &SyscallArgs{I: [6]uint64{fd2.R0}})
		unlinkErr = th.Syscall(SysUnlink, &SyscallArgs{Path: "/tmp/x"}).Errno
		return 0
	})
	e.fs.MkdirAll("/tmp")
	e.run(t, "/bin/f", nil)
	if string(readBack) != "payload" {
		t.Fatalf("read back %q", readBack)
	}
	if unlinkErr != OK {
		t.Fatalf("unlink: %v", unlinkErr)
	}
}

func TestForkWaitStatus(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var waited, status uint64
	var childPID uint64
	e.install(t, "/bin/forker", "forker", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		ret := th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
			ct.Syscall(SysExit, &SyscallArgs{I: [6]uint64{7}})
		}})
		childPID = ret.R0
		r := th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{ret.R0}})
		waited, status = r.R0, r.R1
		return 0
	})
	e.run(t, "/bin/forker", nil)
	if waited != childPID {
		t.Fatalf("wait returned pid %d, want %d", waited, childPID)
	}
	if status != 7 {
		t.Fatalf("status = %d, want 7", status)
	}
}

func TestWaitNoChildren(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var errno Errno
	e.install(t, "/bin/w", "w", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		errno = th.Syscall(SysWait4, &SyscallArgs{}).Errno
		return 0
	})
	e.run(t, "/bin/w", nil)
	if errno != ECHILD {
		t.Fatalf("errno = %v, want ECHILD", errno)
	}
}

func TestForkCopiesMemory(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	parentSees := ""
	e.install(t, "/bin/m", "m", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		r, _ := th.Task().Mem().Map(0, 4096, 3, "shared-test", false)
		th.Task().Mem().WriteAt(r.Base, []byte("parent"))
		ret := th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
			ct.Task().Mem().WriteAt(r.Base, []byte("child!"))
			ct.Syscall(SysExit, nil)
		}})
		th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{ret.R0}})
		buf := make([]byte, 6)
		th.Task().Mem().ReadAt(r.Base, buf)
		parentSees = string(buf)
		return 0
	})
	e.run(t, "/bin/m", nil)
	if parentSees != "parent" {
		t.Fatalf("parent sees %q after child write (COW broken)", parentSees)
	}
}

func TestPipeTransfer(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var got string
	e.install(t, "/bin/pipe", "pipe", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		p := th.Syscall(SysPipe, nil)
		rfd, wfd := p.R0, p.R1
		ret := th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
			ct.Syscall(SysWrite, &SyscallArgs{I: [6]uint64{wfd}, Buf: []byte("hi kid")})
			ct.Syscall(SysExit, nil)
		}})
		buf := make([]byte, 16)
		n := th.Syscall(SysRead, &SyscallArgs{I: [6]uint64{rfd}, Buf: buf})
		got = string(buf[:n.R0])
		th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{ret.R0}})
		return 0
	})
	e.run(t, "/bin/pipe", nil)
	if got != "hi kid" {
		t.Fatalf("got %q", got)
	}
}

func TestPipeEOFOnWriterClose(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var n uint64 = 99
	e.install(t, "/bin/eof", "eof", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		p := th.Syscall(SysPipe, nil)
		th.Syscall(SysClose, &SyscallArgs{I: [6]uint64{p.R1}}) // close write end
		buf := make([]byte, 4)
		n = th.Syscall(SysRead, &SyscallArgs{I: [6]uint64{p.R0}, Buf: buf}).R0
		return 0
	})
	e.run(t, "/bin/eof", nil)
	if n != 0 {
		t.Fatalf("read = %d, want 0 (EOF)", n)
	}
}

func TestSocketpairRoundTrip(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var got string
	e.install(t, "/bin/sock", "sock", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		sp := th.Syscall(SysSocketpair, nil)
		a, b := sp.R0, sp.R1
		ret := th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
			buf := make([]byte, 16)
			n := ct.Syscall(SysRead, &SyscallArgs{I: [6]uint64{b}, Buf: buf})
			ct.Syscall(SysWrite, &SyscallArgs{I: [6]uint64{b}, Buf: append([]byte("re:"), buf[:n.R0]...)})
			ct.Syscall(SysExit, nil)
		}})
		th.Syscall(SysWrite, &SyscallArgs{I: [6]uint64{a}, Buf: []byte("ping")})
		buf := make([]byte, 16)
		n := th.Syscall(SysRead, &SyscallArgs{I: [6]uint64{a}, Buf: buf})
		got = string(buf[:n.R0])
		th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{ret.R0}})
		return 0
	})
	e.run(t, "/bin/sock", nil)
	if got != "re:ping" {
		t.Fatalf("got %q", got)
	}
}

func TestSelectReadiness(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var readyBefore, readyAfter int
	e.install(t, "/bin/sel", "sel", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		p := th.Syscall(SysPipe, nil)
		// Poll: empty pipe is not readable.
		res := th.Syscall(SysSelect, &SyscallArgs{Select: &SelectRequest{
			ReadFDs: []int{int(p.R0)}, Timeout: 0,
		}})
		readyBefore = int(res.R0)
		th.Syscall(SysWrite, &SyscallArgs{I: [6]uint64{p.R1}, Buf: []byte("x")})
		res = th.Syscall(SysSelect, &SyscallArgs{Select: &SelectRequest{
			ReadFDs: []int{int(p.R0)}, Timeout: 0,
		}})
		readyAfter = int(res.R0)
		return 0
	})
	e.run(t, "/bin/sel", nil)
	if readyBefore != 0 || readyAfter != 1 {
		t.Fatalf("ready before/after = %d/%d, want 0/1", readyBefore, readyAfter)
	}
}

func TestSelectBlocksUntilReady(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var woke time.Duration
	e.install(t, "/bin/selb", "selb", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		p := th.Syscall(SysPipe, nil)
		th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
			ct.Charge(5 * time.Millisecond)
			ct.Syscall(SysWrite, &SyscallArgs{I: [6]uint64{p.R1}, Buf: []byte("go")})
			ct.Syscall(SysExit, nil)
		}})
		th.Syscall(SysSelect, &SyscallArgs{Select: &SelectRequest{
			ReadFDs: []int{int(p.R0)}, Timeout: -1,
		}})
		woke = th.Now()
		return 0
	})
	e.run(t, "/bin/selb", nil)
	if woke < 5*time.Millisecond {
		t.Fatalf("select returned at %v, before writer ran", woke)
	}
}

func TestSelectMaxFDs(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	e.k.Costs().SelectMaxFDs = 100
	var errno Errno
	e.install(t, "/bin/selmax", "selmax", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		fds := make([]int, 150)
		for i := range fds {
			fd := th.Syscall(SysOpen, &SyscallArgs{Path: "/dev/zero"})
			fds[i] = int(fd.R0)
		}
		errno = th.Syscall(SysSelect, &SyscallArgs{Select: &SelectRequest{
			ReadFDs: fds, Timeout: 0,
		}}).Errno
		return 0
	})
	e.run(t, "/bin/selmax", nil)
	if errno != EINVAL {
		t.Fatalf("errno = %v, want EINVAL (iPad select limit)", errno)
	}
}

func TestSignalHandlerRuns(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	delivered := -1
	e.install(t, "/bin/sig", "sig", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		th.Syscall(SysRtSigaction, &SyscallArgs{
			I:   [6]uint64{SIGUSR1},
			Act: &SigAction{Handler: func(ht *Thread, sig int) { delivered = sig }},
		})
		pid := th.Syscall(SysGetpid, nil).R0
		th.Syscall(SysKill, &SyscallArgs{I: [6]uint64{pid, SIGUSR1}})
		return 0
	})
	e.run(t, "/bin/sig", nil)
	if delivered != SIGUSR1 {
		t.Fatalf("delivered = %d, want %d", delivered, SIGUSR1)
	}
}

func TestSignalDefaultTerminates(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var status uint64
	e.install(t, "/bin/die", "die", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		ret := th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
			pid := ct.Syscall(SysGetpid, nil).R0
			ct.Syscall(SysKill, &SyscallArgs{I: [6]uint64{pid, SIGTERM}})
			ct.Syscall(SysExit, &SyscallArgs{I: [6]uint64{0}}) // unreachable
		}})
		r := th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{ret.R0}})
		status = r.R1
		return 0
	})
	e.run(t, "/bin/die", nil)
	if status != 128+SIGTERM {
		t.Fatalf("status = %d, want %d", status, 128+SIGTERM)
	}
}

func TestSigactionRejectsKillStop(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var e1, e2 Errno
	e.install(t, "/bin/sa", "sa", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		act := &SigAction{Handler: func(*Thread, int) {}}
		e1 = th.Syscall(SysRtSigaction, &SyscallArgs{I: [6]uint64{SIGKILL}, Act: act}).Errno
		e2 = th.Syscall(SysRtSigaction, &SyscallArgs{I: [6]uint64{SIGSTOP}, Act: act}).Errno
		return 0
	})
	e.run(t, "/bin/sa", nil)
	if e1 != EINVAL || e2 != EINVAL {
		t.Fatalf("errnos = %v/%v, want EINVAL", e1, e2)
	}
}

func TestCrossProcessKill(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var status uint64
	e.install(t, "/bin/killer", "killer", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		ret := th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
			// Block forever in a read; the signal must interrupt and kill.
			p := ct.Syscall(SysPipe, nil)
			buf := make([]byte, 1)
			ct.Syscall(SysRead, &SyscallArgs{I: [6]uint64{p.R0}, Buf: buf})
			ct.Syscall(SysExit, &SyscallArgs{I: [6]uint64{0}})
		}})
		th.Charge(time.Millisecond)
		th.Syscall(SysKill, &SyscallArgs{I: [6]uint64{ret.R0, SIGTERM}})
		r := th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{ret.R0}})
		status = r.R1
		return 0
	})
	e.run(t, "/bin/killer", nil)
	if status != 128+SIGTERM {
		t.Fatalf("status = %d, want %d", status, 128+SIGTERM)
	}
}

func TestPersonaSwitchSyscall(t *testing.T) {
	e := newEnv(t, ProfileCider)
	var before, after persona.Kind
	e.install(t, "/bin/persona", "persona", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		before = th.Persona.Current()
		th.Syscall(SysSetPersona, &SyscallArgs{I: [6]uint64{uint64(persona.IOS)}})
		after = th.Persona.Current()
		return 0
	})
	e.run(t, "/bin/persona", nil)
	if before != persona.Android || after != persona.IOS {
		t.Fatalf("persona %v -> %v, want android -> ios", before, after)
	}
}

func TestSetPersonaUnavailableOnVanilla(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var errno Errno
	e.install(t, "/bin/persona", "persona", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		errno = th.Syscall(SysSetPersona, &SyscallArgs{I: [6]uint64{1}}).Errno
		return 0
	})
	e.run(t, "/bin/persona", nil)
	if errno != ENOSYS {
		t.Fatalf("errno = %v, want ENOSYS on vanilla kernel", errno)
	}
}

func TestNullSyscallOverheadRatio(t *testing.T) {
	// The Cider persona check must cost ~8.5% of a null syscall (§6.2).
	measure := func(profile Profile) time.Duration {
		e := newEnv(t, profile)
		var elapsed time.Duration
		e.install(t, "/bin/null", "null", func(c *prog.Call) uint64 {
			th := c.Ctx.(*Thread)
			start := th.Now()
			const iters = 1000
			for i := 0; i < iters; i++ {
				th.Syscall(SysGetppid, nil)
			}
			elapsed = (th.Now() - start) / iters
			return 0
		})
		e.run(t, "/bin/null", nil)
		return elapsed
	}
	vanilla := measure(ProfileLinuxVanilla)
	cider := measure(ProfileCider)
	ratio := float64(cider) / float64(vanilla)
	if ratio < 1.05 || ratio > 1.13 {
		t.Fatalf("cider/vanilla null syscall = %.3f, want ~1.085", ratio)
	}
}

func TestForkChargesPTECopies(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var small, large time.Duration
	e.install(t, "/bin/ptes", "ptes", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		timeFork := func() time.Duration {
			start := th.Now()
			ret := th.Syscall(SysFork, &SyscallArgs{ChildFn: func(ct *Thread) {
				ct.Syscall(SysExit, nil)
			}})
			end := th.Now()
			th.Syscall(SysWait4, &SyscallArgs{I: [6]uint64{ret.R0}})
			return end - start
		}
		small = timeFork()
		// Map 90 MB (the iOS dylib footprint) and fork again.
		th.Task().Mem().Map(0, 90<<20, 3, "dylibs", false)
		large = timeFork()
		return 0
	})
	e.run(t, "/bin/ptes", nil)
	extra := large - small
	// ~23k PTEs at ~43ns each ≈ 1ms (§6.2).
	if extra < 800*time.Microsecond || extra > 1300*time.Microsecond {
		t.Fatalf("90MB fork PTE cost = %v, want ≈1ms", extra)
	}
}

func TestDeviceAddHook(t *testing.T) {
	e := newEnv(t, ProfileCider)
	var seen []string
	e.k.OnDeviceAdd(func(d Device) { seen = append(seen, d.DevName()) })
	// Hook fires for pre-existing devices (null, zero) immediately.
	if len(seen) != 2 {
		t.Fatalf("hook saw %v, want 2 existing devices", seen)
	}
	fb := &testFBDevice{}
	if err := e.k.AddDevice(fb); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[2] != "fb0" {
		t.Fatalf("hook saw %v after AddDevice", seen)
	}
	// /dev node exists.
	if _, err := e.fs.Lookup("/dev/fb0"); err != nil {
		t.Fatal("no /dev/fb0 node created")
	}
	// Duplicate registration rejected.
	if err := e.k.AddDevice(fb); err == nil {
		t.Fatal("duplicate device registration should fail")
	}
}

type testFBDevice struct{}

func (*testFBDevice) DevName() string            { return "fb0" }
func (*testFBDevice) Open(*Thread) (File, Errno) { return nullFile{}, OK }

func TestFDTableSemantics(t *testing.T) {
	ft := NewFDTable()
	fd1, errno := ft.Alloc(nullFile{})
	if errno != OK || fd1 != 0 {
		t.Fatalf("first fd = %d (%v), want 0", fd1, errno)
	}
	fd2, _ := ft.Alloc(nullFile{})
	if fd2 != 1 {
		t.Fatalf("second fd = %d, want 1", fd2)
	}
	if errno := ft.Close(nil, fd1); errno != OK {
		t.Fatal(errno)
	}
	fd3, _ := ft.Alloc(nullFile{})
	if fd3 != 0 {
		t.Fatalf("lowest-free not reused: got %d", fd3)
	}
	if _, errno := ft.Get(99); errno != EBADF {
		t.Fatalf("Get(99) = %v, want EBADF", errno)
	}
	dup, errno := ft.Dup(fd2)
	if errno != OK || dup == fd2 {
		t.Fatalf("dup = %d (%v)", dup, errno)
	}
	if ft.Count() != 3 {
		t.Fatalf("count = %d, want 3", ft.Count())
	}
}

func TestErrnoTranslation(t *testing.T) {
	if ErrnoToXNU(EAGAIN) != 35 {
		t.Fatalf("EAGAIN -> %d, want 35 (BSD)", ErrnoToXNU(EAGAIN))
	}
	if ErrnoFromXNU(35) != EAGAIN {
		t.Fatal("BSD 35 -> EAGAIN inverse broken")
	}
	if ErrnoToXNU(ENOENT) != int(ENOENT) {
		t.Fatal("shared numbers must pass through")
	}
}

func TestSignalTranslation(t *testing.T) {
	cases := map[int]int{SIGUSR1: 30, SIGUSR2: 31, SIGCHLD: 20, SIGBUS: 10, SIGTERM: 15}
	for lin, xnu := range cases {
		if got := SignalToXNU(lin); got != xnu {
			t.Errorf("SignalToXNU(%d) = %d, want %d", lin, got, xnu)
		}
		if got := SignalFromXNU(xnu); got != lin {
			t.Errorf("SignalFromXNU(%d) = %d, want %d", xnu, got, lin)
		}
	}
}

func TestSpawnThreadSharesTask(t *testing.T) {
	e := newEnv(t, ProfileCider)
	var mainPID, threadPID uint64
	e.install(t, "/bin/thr", "thr", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		mainPID = th.Syscall(SysGetpid, nil).R0
		done := sim.NewWaitQueue("join")
		nt := th.SpawnThread("worker", func(wt *Thread) {
			threadPID = wt.Syscall(SysGetpid, nil).R0
			done.WakeAll(wt.Proc(), sim.WakeNormal)
		})
		_ = nt
		done.Wait(th.Proc())
		return 0
	})
	e.run(t, "/bin/thr", nil)
	if mainPID != threadPID {
		t.Fatalf("thread pid %d != main pid %d", threadPID, mainPID)
	}
}

func TestDupSharesDescription(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var got string
	e.fs.MkdirAll("/tmp")
	e.install(t, "/bin/dup", "dup", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		fd := th.Syscall(SysCreat, &SyscallArgs{Path: "/tmp/dup.f"})
		dup := th.Syscall(SysDup, &SyscallArgs{I: [6]uint64{fd.R0}})
		// Writes through both descriptors share one offset.
		th.Syscall(SysWrite, &SyscallArgs{I: [6]uint64{fd.R0}, Buf: []byte("ab")})
		th.Syscall(SysWrite, &SyscallArgs{I: [6]uint64{dup.R0}, Buf: []byte("cd")})
		th.Syscall(SysClose, &SyscallArgs{I: [6]uint64{fd.R0}})
		th.Syscall(SysClose, &SyscallArgs{I: [6]uint64{dup.R0}})
		fd2 := th.Syscall(SysOpen, &SyscallArgs{Path: "/tmp/dup.f"})
		buf := make([]byte, 8)
		n := th.Syscall(SysRead, &SyscallArgs{I: [6]uint64{fd2.R0}, Buf: buf})
		got = string(buf[:n.R0])
		return 0
	})
	e.run(t, "/bin/dup", nil)
	if got != "abcd" {
		t.Fatalf("file contents %q, want abcd (shared offset)", got)
	}
}

func TestWriteToClosedPipeEPIPE(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var errno Errno
	sigpiped := false
	e.install(t, "/bin/epipe", "epipe", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		th.Syscall(SysRtSigaction, &SyscallArgs{
			I:   [6]uint64{SIGPIPE},
			Act: &SigAction{Handler: func(*Thread, int) { sigpiped = true }},
		})
		p := th.Syscall(SysPipe, nil)
		th.Syscall(SysClose, &SyscallArgs{I: [6]uint64{p.R0}}) // close read end
		errno = th.Syscall(SysWrite, &SyscallArgs{I: [6]uint64{p.R1}, Buf: []byte("x")}).Errno
		return 0
	})
	e.run(t, "/bin/epipe", nil)
	if errno != EPIPE {
		t.Fatalf("errno = %v, want EPIPE", errno)
	}
	if !sigpiped {
		t.Fatal("SIGPIPE not delivered")
	}
}

func TestSelectTimeoutElapses(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var waited time.Duration
	var ready int
	e.install(t, "/bin/selt", "selt", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		p := th.Syscall(SysPipe, nil)
		start := th.Now()
		res := th.Syscall(SysSelect, &SyscallArgs{Select: &SelectRequest{
			ReadFDs: []int{int(p.R0)}, Timeout: 25 * time.Millisecond,
		}})
		waited = th.Now() - start
		ready = int(res.R0)
		return 0
	})
	e.run(t, "/bin/selt", nil)
	if ready != 0 {
		t.Fatalf("ready = %d", ready)
	}
	if waited < 25*time.Millisecond || waited > 27*time.Millisecond {
		t.Fatalf("waited %v, want ≈25ms", waited)
	}
}

func TestSelectBadFD(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var errno Errno
	e.install(t, "/bin/selbad", "selbad", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		errno = th.Syscall(SysSelect, &SyscallArgs{Select: &SelectRequest{
			ReadFDs: []int{423}, Timeout: 0,
		}}).Errno
		return 0
	})
	e.run(t, "/bin/selbad", nil)
	if errno != EBADF {
		t.Fatalf("errno = %v, want EBADF", errno)
	}
}

func TestCostProfilesDiffer(t *testing.T) {
	cpu := hw.Nexus7().CPU
	linux := NewLinuxCosts(cpu)
	cider := NewCiderCosts(cpu)
	xnuNative := NewXNUNativeCosts(hw.IPadMini().CPU)
	if linux.PersonaCheck != 0 {
		t.Fatal("vanilla kernel must not persona-check")
	}
	if cider.PersonaCheck == 0 || cider.XNUTrapDemux == 0 || cider.SetPersonaCost == 0 {
		t.Fatal("cider costs incomplete")
	}
	if xnuNative.SelectMaxFDs == 0 || xnuNative.SelectPerFD <= linux.SelectPerFD {
		t.Fatal("xnu-native select profile wrong")
	}
	for _, p := range []Profile{ProfileLinuxVanilla, ProfileCider, ProfileXNUNative} {
		if p.String() == "" {
			t.Fatal("profile name missing")
		}
	}
}
