package kernel

import "testing"

// TestSignalMapBijective pins the signal-translation fix the differential
// persona oracle (internal/diffcheck) forced: the table must be a
// bijection on [1, NSIG). The pre-fix partial table sent canonical 20
// (SIGTSTP) through as 20 — which is XNU's SIGCHLD — colliding with
// canonical 17's (SIGCHLD) translation, so an iOS-persona thread that
// asked for SIGTSTP actually registered SIGCHLD and could never receive
// a TSTP, while the Android persona handled it fine.
func TestSignalMapBijective(t *testing.T) {
	seenXNU := map[int]int{}
	for sig := 1; sig < NSIG; sig++ {
		x := SignalToXNU(sig)
		if x < 1 || x >= NSIG {
			t.Errorf("SignalToXNU(%d) = %d, out of [1, %d)", sig, x, NSIG)
		}
		if prev, dup := seenXNU[x]; dup {
			t.Errorf("SignalToXNU collision: canonical %d and %d both map to XNU %d",
				prev, sig, x)
		}
		seenXNU[x] = sig
		if back := SignalFromXNU(x); back != sig {
			t.Errorf("SignalFromXNU(SignalToXNU(%d)) = %d, want %d", sig, back, sig)
		}
	}
	for x := 1; x < NSIG; x++ {
		if fwd := SignalToXNU(SignalFromXNU(x)); fwd != x {
			t.Errorf("SignalToXNU(SignalFromXNU(%d)) = %d, want %d", x, fwd, x)
		}
	}
}

// TestSignalTranslationKnownPairs pins the individual mappings the
// bijection fix introduced, including the two orphan pairings (Linux
// SIGSTKFLT with XNU SIGEMT, Linux SIGPWR with XNU SIGINFO).
func TestSignalTranslationKnownPairs(t *testing.T) {
	cases := []struct{ canonical, xnu int }{
		{SIGTSTP, 18},
		{SIGURG, 16},
		{SIGIO, 23},
		{SIGSYS, 12},
		{sigSTKFLT, 7},
		{SIGPWR, 29},
	}
	for _, c := range cases {
		if got := SignalToXNU(c.canonical); got != c.xnu {
			t.Errorf("SignalToXNU(%d) = %d, want %d", c.canonical, got, c.xnu)
		}
		if got := SignalFromXNU(c.xnu); got != c.canonical {
			t.Errorf("SignalFromXNU(%d) = %d, want %d", c.xnu, got, c.canonical)
		}
	}
	// The collision that motivated the fix: TSTP and CHLD must land on
	// distinct XNU numbers.
	if SignalToXNU(SIGTSTP) == SignalToXNU(SIGCHLD) {
		t.Fatalf("SIGTSTP and SIGCHLD translate to the same XNU number %d",
			SignalToXNU(SIGTSTP))
	}
}

// TestErrnoEDEADLKDistinctFromEAGAIN pins the errno-border fix: canonical
// (Linux) 35 is EDEADLK but BSD 35 is EAGAIN, and before EDEADLK was
// declared and pinned the translation passed 35 through unchanged, so an
// injected canonical EDEADLK read back as EAGAIN from iOS-persona TLS.
func TestErrnoEDEADLKDistinctFromEAGAIN(t *testing.T) {
	if EDEADLK == EAGAIN {
		t.Fatal("EDEADLK and EAGAIN collapsed")
	}
	if got := ErrnoToXNU(EDEADLK); got != 11 {
		t.Fatalf("ErrnoToXNU(EDEADLK) = %d, want 11 (BSD EDEADLK)", got)
	}
	if got := ErrnoFromXNU(11); got != EDEADLK {
		t.Fatalf("ErrnoFromXNU(11) = %v, want EDEADLK", got)
	}
	// Round-trip must not leak into EAGAIN's numbers in either direction.
	if got := ErrnoFromXNU(ErrnoToXNU(EDEADLK)); got != EDEADLK {
		t.Fatalf("EDEADLK round-trip = %v", got)
	}
	if got := ErrnoFromXNU(ErrnoToXNU(EAGAIN)); got != EAGAIN {
		t.Fatalf("EAGAIN round-trip = %v", got)
	}
}

// TestErrnosAccessor sanity-checks the exhaustive-iteration hook the
// cross-persona fault-injection test builds on.
func TestErrnosAccessor(t *testing.T) {
	all := Errnos()
	if len(all) == 0 {
		t.Fatal("Errnos() is empty")
	}
	seen := map[Errno]bool{}
	for i, e := range all {
		if e == OK {
			t.Error("Errnos() includes OK")
		}
		if seen[e] {
			t.Errorf("Errnos() duplicate %v", e)
		}
		seen[e] = true
		if i > 0 && all[i-1] >= e {
			t.Fatalf("Errnos() not sorted at %d: %v >= %v", i, all[i-1], e)
		}
	}
	for _, want := range []Errno{EAGAIN, EDEADLK, EINTR, ENOSYS} {
		if !seen[want] {
			t.Errorf("Errnos() missing %v", want)
		}
	}
}
