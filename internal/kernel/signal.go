package kernel

import (
	"repro/internal/persona"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Canonical (Linux/ARM) signal numbers. The ABI layer translates between
// these and XNU numbers at delivery and send time (Section 4.1: "Cider
// uses the persona of a given thread to deliver the correct signal").
const (
	// SIGHUP through SIGTERM share numbering across Linux and XNU.
	sigHUP  = 1
	sigINT  = 2
	sigQUIT = 3
	sigILL  = 4
	sigABRT = 6
	sigBUS  = 7 // XNU: 10
	sigFPE  = 8
	sigKILL = 9
	sigUSR1 = 10 // XNU: 30
	sigSEGV = 11
	sigUSR2 = 12 // XNU: 31
	sigPIPE = 13
	sigALRM = 14
	sigTERM = 15
	sigCHLD = 17 // XNU: 20
	sigCONT = 18 // XNU: 19
	sigSTOP = 19 // XNU: 17
	sigTSTP = 20 // XNU: 18
	sigURG  = 23 // XNU: 16
	sigIO   = 29 // XNU: 23 (SIGIO/SIGPOLL)
	sigPWR  = 30 // XNU: 29 (see the orphan pairing note on linuxToXNUSignal)
	sigSYS  = 31 // XNU: 12
	// sigSTKFLT is Linux-only (stack fault); paired with XNU's Linux-less
	// SIGEMT so the translation stays bijective.
	sigSTKFLT = 16 // XNU: 7 (SIGEMT)
	// NSIG bounds valid canonical numbers.
	nsig = 32
)

// Exported canonical signal numbers for user-space runtimes.
const (
	SIGHUP  = sigHUP
	SIGINT  = sigINT
	SIGQUIT = sigQUIT
	SIGILL  = sigILL
	SIGABRT = sigABRT
	SIGBUS  = sigBUS
	SIGFPE  = sigFPE
	SIGKILL = sigKILL
	SIGUSR1 = sigUSR1
	SIGSEGV = sigSEGV
	SIGUSR2 = sigUSR2
	SIGPIPE = sigPIPE
	SIGALRM = sigALRM
	SIGTERM = sigTERM
	SIGCHLD = sigCHLD
	SIGCONT = sigCONT
	SIGSTOP = sigSTOP
	SIGTSTP = sigTSTP
	SIGURG  = sigURG
	SIGIO   = sigIO
	SIGPWR  = sigPWR
	SIGSYS  = sigSYS
	NSIG    = nsig
)

// SignalHandler is an installed user-space handler. The signal number is
// passed in the *receiving persona's* numbering, as real XNU binaries
// expect (an iOS handler for SIGUSR1 sees 30, not 10).
type SignalHandler func(t *Thread, sig int)

// SigAction is a signal disposition.
type SigAction struct {
	// Handler is the user handler; nil means default disposition.
	Handler SignalHandler
}

// SigInfo describes a delivered signal to observers/tests.
type SigInfo struct {
	// Canonical is the Linux signal number.
	Canonical int
	// Delivered is the number the handler saw (persona-translated).
	Delivered int
}

// Sigaction installs a handler for a canonical signal number. Invoked via
// the syscall tables; the XNU table translates XNU numbers to canonical
// first.
func (t *Thread) sigactionInternal(sig int, act *SigAction) Errno {
	if sig <= 0 || sig >= nsig || sig == sigKILL || sig == sigSTOP {
		return EINVAL
	}
	t.charge(t.k.costs.SigactionBase)
	if act == nil {
		delete(t.task.sigActions, sig)
	} else {
		t.task.sigActions[sig] = act
	}
	return OK
}

// postSignal queues a canonical signal on the target task's main thread
// and interrupts it if blocked in a syscall. Used by the kernel itself
// (SIGCHLD, SIGPIPE) and by kill.
func (k *Kernel) postSignal(target *Task, sig int) {
	if target == nil || target.state != taskRunning {
		return
	}
	th := target.MainThread()
	if th == nil {
		return
	}
	// Signals whose default disposition is "ignore" are discarded at post
	// time when unhandled, exactly as a real kernel drops them — in
	// particular SIGCHLD must not interrupt the parent's wait4.
	if act := target.sigActions[sig]; act == nil || act.Handler == nil {
		if sig == sigCHLD || sig == sigCONT {
			return
		}
	}
	th.sigPending = append(th.sigPending, sig)
	if tr := k.tracer; tr != nil {
		tr.Count(trace.CounterSignalPosted, 1)
	}
	// Interrupt a thread blocked in an interruptible sleep.
	if th.inSyscall && th.proc.State() == sim.StateParked {
		if cur := k.sim.Current(); cur != nil {
			cur.Wake(th.proc, sim.WakeInterrupted)
		}
	}
}

// killInternal implements kill(pid, sig) with canonical numbering.
func (t *Thread) killInternal(pid, sig int) Errno {
	if sig <= 0 || sig >= nsig {
		return EINVAL
	}
	target := t.k.tasks[pid]
	if target == nil || target.state != taskRunning {
		return ESRCH
	}
	// Cider checks the persona of the *target* thread to pick the right
	// delivery format — charged whether or not the personas differ.
	if t.k.PersonaAware() {
		t.charge(t.k.costs.SignalPersonaLookup)
	}
	t.k.postSignal(target, sig)
	// Same-process signals are delivered on the way out of the kill
	// syscall (checkSignals at syscall exit), like a real kernel's
	// return-to-user path.
	return OK
}

// checkSignals delivers pending signals on the calling thread; called at
// syscall exit (the simulated return-to-user path).
func (t *Thread) checkSignals() {
	for len(t.sigPending) > 0 {
		sig := t.sigPending[0]
		t.sigPending = t.sigPending[1:]
		t.deliverSignal(sig)
	}
}

// deliverSignal runs the disposition for one canonical signal.
func (t *Thread) deliverSignal(sig int) {
	k := t.k
	act := t.task.sigActions[sig]
	if act == nil || act.Handler == nil {
		// Default dispositions: ignore the benign ones, terminate on the
		// fatal ones.
		switch sig {
		case sigCHLD, sigCONT:
			return
		default:
			// Real iOS binaries expect fatal faults to surface as Mach
			// exceptions routed through task/host exception ports before the
			// Unix disposition runs. Android-persona threads keep plain
			// Linux semantics — the persona split of Section 4.1.
			if isExceptionSignal(sig) && t.Persona.Current() == persona.IOS && k.excBridge != nil {
				if k.excBridge(t, sig) {
					return // catcher handled it; thread resumes
				}
			}
			if tr := k.tracer; tr != nil {
				tr.Count(trace.CounterSignalDelivered, 1)
				tr.Signal(t.proc.Name(), t.proc.ID(), t.Persona.Current(), sig,
					"default:terminate", t.proc.Now())
			}
			t.exitTask(128 + sig)
		}
		return
	}
	t.charge(k.costs.SignalDeliverBase)
	delivered := sig
	translated := false
	if t.Persona.Current() == persona.IOS {
		if k.PersonaAware() {
			// Translate to the XNU number and copy the larger XNU
			// sigframe the iOS handler expects (the 25% lat_sig overhead).
			t.charge(k.costs.SignalXNUTranslate + k.costs.SignalXNUFrame)
			translated = true
		}
		delivered = SignalToXNU(sig)
	}
	if tr := k.tracer; tr != nil {
		tr.Count(trace.CounterSignalDelivered, 1)
		if translated {
			tr.Count(trace.CounterSignalXNUDeliver, 1)
		}
		tr.Signal(t.proc.Name(), t.proc.ID(), t.Persona.Current(), delivered,
			"handler", t.proc.Now())
	}
	act.Handler(t, delivered)
}

// isExceptionSignal reports whether a canonical signal corresponds to a
// Mach exception class (the fatal faults EXC_* delivery covers).
func isExceptionSignal(sig int) bool {
	switch sig {
	case sigSEGV, sigBUS, sigILL, sigFPE, sigABRT:
		return true
	}
	return false
}

// IsExceptionSignal exposes the exception-signal set to the xnu extension
// and tests.
func IsExceptionSignal(sig int) bool { return isExceptionSignal(sig) }

// linuxToXNUSignal maps canonical Linux numbers to XNU numbers where they
// differ (sys/signal.h on each platform). The map must be a bijection on
// [1, nsig): a partial table is how the oracle-caught SIGTSTP bug happened
// — canonical 20 (TSTP) and canonical 17 (CHLD, XNU 20) both translated to
// XNU 20, so an iOS thread could neither register nor receive TSTP, while
// the Android persona handled it fine. Two signals have no counterpart on
// the other platform; they are paired with each other's orphans (STKFLT
// with EMT, PWR with INFO) so no number is lost in either direction —
// real Cider's translation table must make the same arbitrary choice or
// drop those signals entirely. TestSignalMapBijective pins all of this.
var linuxToXNUSignal = map[int]int{
	sigBUS:    10,
	sigUSR1:   30,
	sigUSR2:   31,
	sigCHLD:   20,
	sigCONT:   19,
	sigSTOP:   17,
	sigTSTP:   18,
	sigURG:    16,
	sigIO:     23,
	sigSYS:    12,
	sigSTKFLT: 7,  // Linux SIGSTKFLT <-> XNU SIGEMT (orphan pairing)
	sigPWR:    29, // Linux SIGPWR   <-> XNU SIGINFO (orphan pairing)
}

// xnuToLinuxSignal is the inverse mapping.
var xnuToLinuxSignal = func() map[int]int {
	m := make(map[int]int)
	for l, x := range linuxToXNUSignal {
		m[x] = l
	}
	return m
}()

// SignalToXNU converts a canonical Linux signal number to its XNU number.
func SignalToXNU(sig int) int {
	if x, ok := linuxToXNUSignal[sig]; ok {
		return x
	}
	return sig
}

// SignalFromXNU converts an XNU signal number to the canonical Linux one.
func SignalFromXNU(sig int) int {
	if l, ok := xnuToLinuxSignal[sig]; ok {
		return l
	}
	return sig
}
