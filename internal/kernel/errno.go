package kernel

import (
	"fmt"
	"sort"

	"repro/internal/vfs"
)

// Errno is a kernel error number. The kernel's canonical numbering is
// Linux's (the domestic kernel); the ABI layer translates to XNU/BSD
// numbers at the syscall boundary for iOS-persona threads, the same place
// Cider converts return conventions (Section 4.1).
type Errno int

// Canonical (Linux/ARM) errno values used by the simulation.
const (
	// OK is success (not a real errno; used as the zero value).
	OK Errno = 0
	// EPERM: operation not permitted.
	EPERM Errno = 1
	// ENOENT: no such file or directory.
	ENOENT Errno = 2
	// ESRCH: no such process.
	ESRCH Errno = 3
	// EINTR: interrupted system call.
	EINTR Errno = 4
	// EIO: I/O error.
	EIO Errno = 5
	// ENOEXEC: exec format error.
	ENOEXEC Errno = 8
	// EBADF: bad file descriptor.
	EBADF Errno = 9
	// ECHILD: no child processes.
	ECHILD Errno = 10
	// EAGAIN: resource temporarily unavailable.
	EAGAIN Errno = 11
	// ENOMEM: out of memory.
	ENOMEM Errno = 12
	// EACCES: permission denied.
	EACCES Errno = 13
	// EFAULT: bad address.
	EFAULT Errno = 14
	// EEXIST: file exists.
	EEXIST Errno = 17
	// ENOTDIR: not a directory.
	ENOTDIR Errno = 20
	// EISDIR: is a directory.
	EISDIR Errno = 21
	// EINVAL: invalid argument.
	EINVAL Errno = 22
	// ENFILE/EMFILE: too many open files.
	EMFILE Errno = 24
	// ENOTTY: inappropriate ioctl for device.
	ENOTTY Errno = 25
	// ENOSPC: no space left on device.
	ENOSPC Errno = 28
	// EPIPE: broken pipe.
	EPIPE Errno = 32
	// EDEADLK: resource deadlock would occur. Declared because its Linux
	// number (35) is BSD's EAGAIN: an undeclared 35 crossing the persona
	// boundary reads as "would block" to an iOS thread and "deadlock" to an
	// Android one — the differential oracle caught exactly that on the
	// errno-storm fault schedule, which injected the BSD number as if it
	// were canonical.
	EDEADLK Errno = 35
	// ENOSYS: function not implemented.
	ENOSYS Errno = 38
	// ENOTEMPTY: directory not empty.
	ENOTEMPTY Errno = 39
	// ELOOP: too many levels of symbolic links.
	ELOOP Errno = 40
	// EOPNOTSUPP: operation not supported.
	EOPNOTSUPP Errno = 95
)

var errnoNames = map[Errno]string{
	OK: "OK", EPERM: "EPERM", ENOENT: "ENOENT", ESRCH: "ESRCH",
	EINTR: "EINTR", EIO: "EIO", ENOEXEC: "ENOEXEC", EBADF: "EBADF",
	ECHILD: "ECHILD", EAGAIN: "EAGAIN", ENOMEM: "ENOMEM", EACCES: "EACCES",
	EFAULT: "EFAULT", EEXIST: "EEXIST", ENOTDIR: "ENOTDIR",
	EISDIR: "EISDIR", EINVAL: "EINVAL", EMFILE: "EMFILE", ENOTTY: "ENOTTY",
	ENOSPC: "ENOSPC", EPIPE: "EPIPE", EDEADLK: "EDEADLK", ENOSYS: "ENOSYS",
	ENOTEMPTY: "ENOTEMPTY", ELOOP: "ELOOP", EOPNOTSUPP: "EOPNOTSUPP",
}

// Errnos returns every declared canonical errno (excluding OK), sorted.
// The differential oracle iterates this to prove each value survives the
// persona boundary as the same semantic condition under both ABIs.
func Errnos() []Errno {
	out := make([]Errno, 0, len(errnoNames))
	for e := range errnoNames {
		if e != OK {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (e Errno) Error() string {
	if n, ok := errnoNames[e]; ok {
		return n
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// linuxToXNUErrno pins every declared Errno to its XNU/BSD number
// (errno.h on each platform; most low numbers coincide, EAGAIN and above
// drift). Part of the XNU ABI's return-convention translation
// (Section 4.1); diplomatic functions apply the inverse when converting
// domestic TLS errno values back into the foreign TLS area (arbitration
// step 8, Section 4.3). Every Errno declared above must appear here so
// fault-injected errnos never cross the persona boundary Linux-numbered;
// TestErrnoRoundTripExhaustive enforces that.
var linuxToXNUErrno = map[Errno]int{
	EPERM:      1,
	ENOENT:     2,
	ESRCH:      3,
	EINTR:      4,
	EIO:        5,
	ENOEXEC:    8,
	EBADF:      9,
	ECHILD:     10,
	EAGAIN:     35, // BSD EAGAIN/EWOULDBLOCK
	ENOMEM:     12,
	EACCES:     13,
	EFAULT:     14,
	EEXIST:     17,
	ENOTDIR:    20,
	EISDIR:     21,
	EINVAL:     22,
	EMFILE:     24,
	ENOTTY:     25,
	ENOSPC:     28,
	EPIPE:      32,
	EDEADLK:    11, // BSD EDEADLK; Linux 35 is BSD EAGAIN, so both must be pinned
	ENOSYS:     78,
	ENOTEMPTY:  66,
	ELOOP:      62,
	EOPNOTSUPP: 102,
}

var xnuToLinuxErrno = func() map[int]Errno {
	m := make(map[int]Errno)
	for l, x := range linuxToXNUErrno {
		m[x] = l
	}
	return m
}()

// ErrnoToXNU converts a canonical errno to its XNU/BSD number.
func ErrnoToXNU(e Errno) int {
	if x, ok := linuxToXNUErrno[e]; ok {
		return x
	}
	return int(e)
}

// ErrnoFromXNU converts an XNU/BSD errno number to the canonical value.
func ErrnoFromXNU(x int) Errno {
	if l, ok := xnuToLinuxErrno[x]; ok {
		return l
	}
	return Errno(x)
}

// ErrnoFromVFS maps a vfs error onto the errno a Linux kernel would return
// for the same condition.
func ErrnoFromVFS(err error) Errno {
	switch err.(type) {
	case nil:
		return OK
	case *vfs.ErrNotFound:
		return ENOENT
	case *vfs.ErrExists:
		return EEXIST
	case *vfs.ErrNotDir:
		return ENOTDIR
	case *vfs.ErrIsDir:
		return EISDIR
	case *vfs.ErrNotEmpty:
		return ENOTEMPTY
	case *vfs.ErrLoop:
		return ELOOP
	case *vfs.ErrIO:
		return EIO
	case *vfs.ErrNoSpace:
		return ENOSPC
	}
	return EIO
}
