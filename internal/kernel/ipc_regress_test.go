package kernel

// Regression tests for three IPC wakeup/return-value bugs:
//
//   1. sockEnd published only its receive queue to select, so a selector
//      waiting for writability was never woken when the peer drained the
//      socket (TestSelectWritableSocket).
//   2. A queue wake landing at or after select's deadline was reported as
//      a timeout with an empty result, dropping a ready descriptor
//      (TestSelectWakeAtDeadline).
//   3. A pipe write interrupted (or hitting EPIPE) after a partial
//      transfer returned the partial count *and* an error; POSIX requires
//      the partial count as success (TestPipeWriteInterruptedPartial).

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/prog"
	"repro/internal/sim"
)

// TestSelectWritableSocket: a thread select()ing for writability on a
// full AF_UNIX socket must wake when the peer drains it. Before the fix,
// sockEnd.PollQueues returned only the receive queue, the reader's wakeup
// was broadcast on the send buffer's queue nobody waited on, and the
// selector parked forever (sim.ErrDeadlock).
func TestSelectWritableSocket(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var res *SelectResult
	var woke time.Duration
	e.install(t, "/bin/selw", "selw", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		sp := th.Syscall(SysSocketpair, nil)
		a, b := sp.R0, sp.R1
		// Fill a's send direction to capacity: a is no longer writable.
		th.Syscall(SysWrite, &SyscallArgs{I: [6]uint64{a}, Buf: make([]byte, pipeCapacity)})
		th.SpawnThread("drain", func(wt *Thread) {
			wt.Charge(time.Millisecond)
			buf := make([]byte, 4096)
			wt.Syscall(SysRead, &SyscallArgs{I: [6]uint64{b}, Buf: buf})
		})
		ret := th.Syscall(SysSelect, &SyscallArgs{Select: &SelectRequest{
			WriteFDs: []int{int(a)}, Timeout: -1,
		}})
		res = ret.Select
		woke = th.Now()
		return 0
	})
	e.run(t, "/bin/selw", nil)
	if res == nil || len(res.WriteReady) != 1 || res.WriteReady[0] != 0 {
		t.Fatalf("WriteReady = %+v, want socket fd 0", res)
	}
	if woke < time.Millisecond {
		t.Fatalf("select returned at %v, before the peer drained", woke)
	}
}

// TestSelectWakeAtDeadline: a writer wakes the selector at exactly the
// timeout deadline. The wake tag is WakeNormal and now >= deadline, which
// is indistinguishable from timer expiry — before the fix select declared
// a timeout and returned an empty set, dropping the ready descriptor.
// Zero kernel costs pin every event to an exact virtual instant. The main
// thread must be the writer: at a tied instant the scheduler resumes the
// lower-id runnable proc before firing an equal-deadline sleeper, so the
// write lands before the selector's timer.
func TestSelectWakeAtDeadline(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	*e.k.Costs() = Costs{}
	const timeout = 10 * time.Millisecond
	var res *SelectResult
	var errno Errno
	e.install(t, "/bin/seldl", "seldl", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		p := th.Syscall(SysPipe, nil)
		rfd, wfd := p.R0, p.R1
		join := sim.NewWaitQueue("join")
		th.SpawnThread("selector", func(wt *Thread) {
			res, errno = wt.selectInternal(&SelectRequest{
				ReadFDs: []int{int(rfd)}, Timeout: timeout,
			})
			join.WakeAll(wt.Proc(), sim.WakeNormal)
		})
		th.Charge(timeout) // the selector runs (and parks) during this charge
		th.Syscall(SysWrite, &SyscallArgs{I: [6]uint64{wfd}, Buf: []byte("x")})
		join.Wait(th.Proc())
		return 0
	})
	e.run(t, "/bin/seldl", nil)
	if errno != OK {
		t.Fatalf("select errno = %v", errno)
	}
	if res == nil || len(res.ReadReady) != 1 {
		t.Fatalf("select at deadline dropped the ready fd: %+v", res)
	}
}

// TestPipeWriteInterruptedPartial: a signal interrupting a blocked pipe
// write that has already transferred bytes must yield the partial count
// as success, not (count, EINTR) — POSIX write(2) semantics. The handler
// still runs on syscall exit.
func TestPipeWriteInterruptedPartial(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	var ret SyscallRet
	handled := false
	e.install(t, "/bin/wintr", "wintr", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		th.Syscall(SysRtSigaction, &SyscallArgs{
			I:   [6]uint64{SIGUSR1},
			Act: &SigAction{Handler: func(*Thread, int) { handled = true }},
		})
		p := th.Syscall(SysPipe, nil)
		pid := th.Syscall(SysGetpid, nil).R0
		th.SpawnThread("killer", func(wt *Thread) {
			wt.Charge(time.Millisecond)
			wt.Syscall(SysKill, &SyscallArgs{I: [6]uint64{pid, SIGUSR1}})
		})
		// Twice the pipe capacity: the first half fills the buffer, then
		// the writer blocks with total == pipeCapacity transferred.
		ret = th.Syscall(SysWrite, &SyscallArgs{
			I: [6]uint64{p.R1}, Buf: make([]byte, 2*pipeCapacity),
		})
		return 0
	})
	e.run(t, "/bin/wintr", nil)
	if ret.Errno != OK {
		t.Fatalf("interrupted partial write: errno = %v, want OK (POSIX partial count)", ret.Errno)
	}
	if ret.R0 != pipeCapacity {
		t.Fatalf("partial write returned %d, want %d", ret.R0, pipeCapacity)
	}
	if !handled {
		t.Fatal("SIGUSR1 handler did not run on syscall exit")
	}
}

// TestPipeWriteInjectedInterruptPartial covers the same POSIX
// partial-count rule as TestPipeWriteInterruptedPartial, but delivers the
// interrupt through the fault layer: an OpPark rule on waitq:pipe fires
// on the writer's own park, so no killer thread, no reader, and no signal
// machinery are involved. The signal-based test above stays because it
// additionally asserts handler delivery on syscall exit, which the
// injector deliberately does not model.
func TestPipeWriteInjectedInterruptPartial(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	in := fault.NewInjector(fault.Plan{Name: "pipe-eintr", Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpPark, Match: "waitq:pipe", Nth: 1},
	}})
	e.k.EnableFaults(in)
	var ret SyscallRet
	e.install(t, "/bin/wfault", "wfault", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		p := th.Syscall(SysPipe, nil)
		// Twice the pipe capacity with no reader: the first half fills the
		// buffer, then the blocking park is interrupted by the injector.
		ret = th.Syscall(SysWrite, &SyscallArgs{
			I: [6]uint64{p.R1}, Buf: make([]byte, 2*pipeCapacity),
		})
		return 0
	})
	e.run(t, "/bin/wfault", nil)
	if in.Fired() != 1 {
		t.Fatalf("injector fired %d times, want 1", in.Fired())
	}
	if ret.Errno != OK {
		t.Fatalf("interrupted partial write: errno = %v, want OK (POSIX partial count)", ret.Errno)
	}
	if ret.R0 != pipeCapacity {
		t.Fatalf("partial write returned %d, want %d", ret.R0, pipeCapacity)
	}
}

// TestSelectInjectedEINTR: an interrupt landing while select blocks with
// no ready descriptors and no timeout must surface EINTR to the caller.
// Without the injection this select would park forever (the pipe has no
// writer) and the run would end in sim.ErrDeadlock, so a pass also proves
// the interrupt actually reached the select wait.
func TestSelectInjectedEINTR(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	e.k.EnableFaults(fault.NewInjector(fault.Plan{Name: "select-eintr", Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpPark, Match: "select", Nth: 1},
	}}))
	var ret SyscallRet
	e.install(t, "/bin/selint", "selint", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		p := th.Syscall(SysPipe, nil)
		ret = th.Syscall(SysSelect, &SyscallArgs{Select: &SelectRequest{
			ReadFDs: []int{int(p.R0)}, Timeout: -1,
		}})
		return 0
	})
	e.run(t, "/bin/selint", nil)
	if ret.Errno != EINTR {
		t.Fatalf("interrupted select: errno = %v, want EINTR", ret.Errno)
	}
}
