package kernel

import (
	"time"

	"repro/internal/sim"
)

// SelectRequest describes one select(2) invocation.
type SelectRequest struct {
	// ReadFDs and WriteFDs are the descriptor sets to test.
	ReadFDs  []int
	WriteFDs []int
	// Timeout < 0 blocks forever; 0 polls; > 0 bounds the wait.
	Timeout time.Duration
}

// SelectResult reports ready descriptors.
type SelectResult struct {
	ReadReady  []int
	WriteReady []int
}

// N returns the total number of ready descriptors.
func (r *SelectResult) N() int { return len(r.ReadReady) + len(r.WriteReady) }

// selectInternal implements select(2): scan the sets (charging the per-fd
// cost the lmbench select test measures), and block on every referenced
// file's poll queue until something becomes ready.
func (t *Thread) selectInternal(req *SelectRequest) (*SelectResult, Errno) {
	k := t.k
	nfds := len(req.ReadFDs) + len(req.WriteFDs)
	if k.costs.SelectMaxFDs > 0 && nfds >= k.costs.SelectMaxFDs {
		// The iPad mini's kernel "simply failed to complete for 250 file
		// descriptors" (Section 6.2).
		return nil, EINVAL
	}
	deadline := time.Duration(-1)
	if req.Timeout >= 0 {
		deadline = t.proc.Now() + req.Timeout
	}
	for {
		t.charge(k.costs.SelectBase + time.Duration(nfds)*k.costs.SelectPerFD)
		res, queues, bad := t.scanSelect(req, true)
		if bad {
			return nil, EBADF
		}
		if res.N() > 0 {
			return res, OK
		}
		if req.Timeout == 0 {
			return res, OK // poll: nothing ready
		}
		// Nothing ready: wait on every queue at once.
		for _, q := range queues {
			q.Enqueue(t.proc)
		}
		var tag int
		timedOut := false
		if deadline >= 0 {
			remain := deadline - t.proc.Now()
			if remain < 0 {
				remain = 0
			}
			tag = t.proc.Sleep(remain)
			timedOut = tag == sim.WakeNormal && t.proc.Now() >= deadline
		} else {
			tag = t.proc.Park("select")
		}
		for _, q := range queues {
			q.Dequeue(t.proc)
		}
		if tag == sim.WakeInterrupted {
			return nil, EINTR
		}
		if timedOut {
			// A queue wake can race the deadline: a WakeNormal arriving at
			// or after the deadline instant looks identical to timer expiry,
			// but an fd may have become ready. Rescan once so that ready fd
			// is reported instead of dropped. The rescan is deliberately
			// uncharged — a true timeout must cost exactly what it did
			// before this fix (benchmark virtual times are bit-identical),
			// and the racing waker's readiness check rides on the scan cost
			// already charged this iteration.
			res, _, bad = t.scanSelect(req, false)
			if bad {
				return nil, EBADF
			}
			return res, OK
		}
	}
}

// scanSelect performs one readiness pass over the request's descriptor
// sets. When collectQueues is set it also gathers the wait queues to
// block on, asking each file only for the queues matching the interest
// it was polled with (read-interest must not enqueue on write-side
// queues, and vice versa). bad reports a dangling descriptor.
func (t *Thread) scanSelect(req *SelectRequest, collectQueues bool) (res *SelectResult, queues []*sim.WaitQueue, bad bool) {
	res = &SelectResult{}
	scan := func(fds []int, want PollMask, out *[]int) {
		for _, fd := range fds {
			f, errno := t.task.fds.Get(fd)
			if errno != OK {
				bad = true
				return
			}
			if f.Poll()&(want|PollHup) != 0 {
				*out = append(*out, fd)
			}
			if collectQueues {
				queues = append(queues, f.PollQueues(want)...)
			}
		}
	}
	scan(req.ReadFDs, PollIn, &res.ReadReady)
	scan(req.WriteFDs, PollOut, &res.WriteReady)
	return res, queues, bad
}
