package kernel

import "testing"

// RLIMIT_NOFILE regression tests for the FDTable: the limit is the
// per-task soft rlimit (no longer a hard-coded cap), lowering it mid-run
// must deny new allocations without disturbing descriptors already open
// above it, every rejection must report through onLimit, and a fork must
// inherit both the limit and the observer.

func TestFDTableSetLimitDeniesAllocAndDup(t *testing.T) {
	hits := 0
	ft := NewFDTable()
	ft.onLimit = func() { hits++ }
	ft.SetLimit(3)
	for i := 0; i < 3; i++ {
		if fd, errno := ft.Alloc(&countingFile{}); fd != i || errno != OK {
			t.Fatalf("Alloc %d = %d, %v", i, fd, errno)
		}
	}
	if _, errno := ft.Alloc(&countingFile{}); errno != EMFILE {
		t.Fatalf("Alloc at limit: %v, want EMFILE", errno)
	}
	if _, errno := ft.Dup(0); errno != EMFILE {
		t.Fatalf("Dup at limit: %v, want EMFILE", errno)
	}
	if hits != 2 {
		t.Fatalf("onLimit hits = %d, want 2 (one per rejection)", hits)
	}
	// Freeing a slot makes exactly one allocation possible again.
	if errno := ft.Close(nil, 1); errno != OK {
		t.Fatalf("Close: %v", errno)
	}
	if fd, errno := ft.Dup(0); fd != 1 || errno != OK {
		t.Fatalf("Dup after free = %d, %v", fd, errno)
	}
	if _, errno := ft.Dup(0); errno != EMFILE {
		t.Fatalf("Dup past refilled limit: %v, want EMFILE", errno)
	}
	if hits != 3 {
		t.Fatalf("onLimit hits = %d, want 3", hits)
	}
}

func TestFDTableLowerLimitKeepsOpenDescriptors(t *testing.T) {
	// setrlimit below the current descriptor count (permitted by POSIX)
	// must not revoke open descriptors: fds above the new limit stay
	// readable and closable; only new allocations are denied.
	f := &countingFile{}
	ft := NewFDTable()
	for i := 0; i < 5; i++ {
		ft.Alloc(f)
	}
	ft.SetLimit(2)
	for fd := 0; fd < 5; fd++ {
		if _, errno := ft.Get(fd); errno != OK {
			t.Fatalf("Get(%d) after lowering limit: %v", fd, errno)
		}
	}
	if _, errno := ft.Alloc(&countingFile{}); errno != EMFILE {
		t.Fatalf("Alloc under lowered limit: %v, want EMFILE", errno)
	}
	// Closing fd 3 frees a slot, but slot 3 sits above limit 2: still EMFILE.
	if errno := ft.Close(nil, 3); errno != OK {
		t.Fatalf("Close(3): %v", errno)
	}
	if _, errno := ft.Alloc(&countingFile{}); errno != EMFILE {
		t.Fatalf("Alloc into out-of-bounds free slot: %v, want EMFILE", errno)
	}
	// A slot below the limit is usable once freed.
	ft.Close(nil, 1)
	if fd, errno := ft.Alloc(&countingFile{}); fd != 1 || errno != OK {
		t.Fatalf("Alloc into in-bounds slot = %d, %v", fd, errno)
	}
}

func TestFDTableForkInheritsLimit(t *testing.T) {
	hits := 0
	ft := NewFDTable()
	ft.onLimit = func() { hits++ }
	ft.SetLimit(2)
	ft.Alloc(&countingFile{})
	child := ft.Fork()
	if child.Limit() != 2 {
		t.Fatalf("child limit = %d, want 2", child.Limit())
	}
	if fd, errno := child.Alloc(&countingFile{}); fd != 1 || errno != OK {
		t.Fatalf("child Alloc = %d, %v", fd, errno)
	}
	if _, errno := child.Alloc(&countingFile{}); errno != EMFILE {
		t.Fatalf("child Alloc at inherited limit: %v, want EMFILE", errno)
	}
	if hits != 1 {
		t.Fatalf("onLimit hits = %d, want 1 (observer inherited by fork)", hits)
	}
	// Limits diverge after fork: raising the child's must not affect the
	// parent's.
	child.SetLimit(4)
	if _, errno := child.Alloc(&countingFile{}); errno != OK {
		t.Fatalf("child Alloc after raise: %v", errno)
	}
	if fd, errno := ft.Dup(0); fd != 1 || errno != OK {
		t.Fatalf("parent Dup = %d, %v", fd, errno)
	}
	if _, errno := ft.Dup(0); errno != EMFILE {
		t.Fatal("parent limit loosened by child setrlimit")
	}
}
