package kernel

import "repro/internal/sim"

// pipeBuffer is the shared state of a pipe or one direction of a UNIX
// socket: a bounded byte queue with blocking reads/writes.
type pipeBuffer struct {
	data    []byte
	cap     int
	readers int
	writers int
	// queue is broadcast whenever readability/writability changes.
	queue *sim.WaitQueue
	// queues is the queue as a reusable one-element slice for PollQueues.
	queues []*sim.WaitQueue
}

const pipeCapacity = 65536 // Linux default pipe buffer

func newPipeBuffer(name string) *pipeBuffer {
	pb := &pipeBuffer{cap: pipeCapacity, queue: sim.NewWaitQueue(name)}
	pb.queues = []*sim.WaitQueue{pb.queue}
	return pb
}

func (pb *pipeBuffer) readable() bool { return len(pb.data) > 0 || pb.writers == 0 }
func (pb *pipeBuffer) writable() bool { return len(pb.data) < pb.cap || pb.readers == 0 }

func (pb *pipeBuffer) read(t *Thread, buf []byte) (int, Errno) {
	for len(pb.data) == 0 {
		if pb.writers == 0 {
			return 0, OK // EOF
		}
		if tag := pb.queue.Wait(t.proc); tag == sim.WakeInterrupted {
			return 0, EINTR
		}
	}
	n := copy(buf, pb.data)
	pb.data = pb.data[n:]
	pb.queue.WakeAll(t.proc, sim.WakeNormal)
	return n, OK
}

func (pb *pipeBuffer) write(t *Thread, buf []byte) (int, Errno) {
	if pb.readers == 0 {
		t.k.postSignal(t.task, sigPIPE)
		return 0, EPIPE
	}
	total := 0
	for len(buf) > 0 {
		for len(pb.data) >= pb.cap {
			// POSIX write(2): once any bytes have transferred, the call
			// reports the partial count as success; EPIPE/EINTR (and the
			// SIGPIPE that accompanies EPIPE) are raised only by a
			// subsequent write that transfers nothing.
			if pb.readers == 0 {
				if total > 0 {
					return total, OK
				}
				t.k.postSignal(t.task, sigPIPE)
				return 0, EPIPE
			}
			if tag := pb.queue.Wait(t.proc); tag == sim.WakeInterrupted {
				if total > 0 {
					return total, OK
				}
				return 0, EINTR
			}
		}
		n := pb.cap - len(pb.data)
		if n > len(buf) {
			n = len(buf)
		}
		pb.data = append(pb.data, buf[:n]...)
		buf = buf[n:]
		total += n
		pb.queue.WakeAll(t.proc, sim.WakeNormal)
	}
	return total, OK
}

// pipeEnd is one descriptor of a pipe (read or write end).
type pipeEnd struct {
	buf     *pipeBuffer
	k       *Kernel
	canRead bool
	// unixHop charges the AF_UNIX cost instead of the pipe cost.
	unix bool
}

// hopCost charges the one-way IPC latency. It is charged on the read
// side only, when data actually arrives: lmbench's lat_pipe measures a
// full round trip and its per-hop figure already includes both the
// writer's copy-in and the reader's wakeup, so charging the writer too
// would double-count the calibrated hop.
func (pe *pipeEnd) hopCost(t *Thread) {
	if pe.unix {
		t.charge(t.k.costs.UnixHop)
	} else {
		t.charge(t.k.costs.PipeHop)
	}
}

func (pe *pipeEnd) Read(t *Thread, buf []byte) (int, Errno) {
	if !pe.canRead {
		return 0, EBADF
	}
	n, errno := pe.buf.read(t, buf)
	if n > 0 {
		pe.hopCost(t)
	}
	return n, errno
}

func (pe *pipeEnd) Write(t *Thread, buf []byte) (int, Errno) {
	if pe.canRead {
		return 0, EBADF
	}
	return pe.buf.write(t, buf)
}

func (pe *pipeEnd) Close(t *Thread) Errno {
	if pe.canRead {
		pe.buf.readers--
	} else {
		pe.buf.writers--
	}
	if cur := pe.k.sim.Current(); cur != nil {
		pe.buf.queue.WakeAll(cur, sim.WakeNormal)
	}
	return OK
}

func (pe *pipeEnd) Poll() PollMask {
	var m PollMask
	if pe.canRead && pe.buf.readable() {
		m |= PollIn
	}
	if !pe.canRead && pe.buf.writable() {
		m |= PollOut
	}
	if pe.canRead && pe.buf.writers == 0 {
		m |= PollHup
	}
	return m
}

func (pe *pipeEnd) PollQueues(PollMask) []*sim.WaitQueue { return pe.buf.queues }

func (pe *pipeEnd) Ioctl(*Thread, uint64, uint64) (uint64, Errno) {
	return 0, ENOTTY
}

// pipeInternal implements pipe(2), returning (readFD, writeFD).
func (t *Thread) pipeInternal() (int, int, Errno) {
	pb := newPipeBuffer("pipe")
	pb.readers, pb.writers = 1, 1
	r := &pipeEnd{buf: pb, k: t.k, canRead: true}
	w := &pipeEnd{buf: pb, k: t.k, canRead: false}
	rfd, errno := t.task.fds.Alloc(r)
	if errno != OK {
		return -1, -1, errno
	}
	wfd, errno := t.task.fds.Alloc(w)
	if errno != OK {
		t.task.fds.Close(t, rfd)
		return -1, -1, errno
	}
	return rfd, wfd, OK
}

// sockEnd is one endpoint of a connected AF_UNIX stream socket: two pipe
// buffers, one per direction.
type sockEnd struct {
	k    *Kernel
	recv *pipeBuffer
	send *pipeBuffer
	// recvQ/sendQ/bothQ are cached PollQueues results: readability (and
	// hangup) is signalled on the recv buffer's queue, writability on the
	// send buffer's.
	recvQ []*sim.WaitQueue
	sendQ []*sim.WaitQueue
	bothQ []*sim.WaitQueue
}

func newSockEnd(k *Kernel, recv, send *pipeBuffer) *sockEnd {
	return &sockEnd{
		k: k, recv: recv, send: send,
		recvQ: []*sim.WaitQueue{recv.queue},
		sendQ: []*sim.WaitQueue{send.queue},
		bothQ: []*sim.WaitQueue{recv.queue, send.queue},
	}
}

func (se *sockEnd) Read(t *Thread, buf []byte) (int, Errno) {
	n, errno := se.recv.read(t, buf)
	if n > 0 {
		t.charge(t.k.costs.UnixHop)
	}
	return n, errno
}

func (se *sockEnd) Write(t *Thread, buf []byte) (int, Errno) {
	return se.send.write(t, buf)
}

func (se *sockEnd) Close(t *Thread) Errno {
	se.recv.readers--
	se.send.writers--
	if cur := se.k.sim.Current(); cur != nil {
		se.recv.queue.WakeAll(cur, sim.WakeNormal)
		se.send.queue.WakeAll(cur, sim.WakeNormal)
	}
	return OK
}

func (se *sockEnd) Poll() PollMask {
	var m PollMask
	if se.recv.readable() {
		m |= PollIn
	}
	if se.send.writable() {
		m |= PollOut
	}
	if se.recv.writers == 0 {
		m |= PollHup
	}
	return m
}

// PollQueues picks queues by interest. The recv and send directions of a
// socket live in different buffers, so a write-selector must wait on the
// send buffer's queue — a reader draining the peer broadcasts there. (An
// earlier version returned only the recv queue, leaving write-selectors
// unwakeable; see TestSelectWritableSocket.) Read-interest selectors
// still wait only on the recv queue, so they see no extra wakeups.
func (se *sockEnd) PollQueues(interest PollMask) []*sim.WaitQueue {
	switch {
	case interest&PollOut == 0:
		return se.recvQ
	case interest&(PollIn|PollHup) == 0:
		return se.sendQ
	}
	return se.bothQ
}

func (se *sockEnd) Ioctl(*Thread, uint64, uint64) (uint64, Errno) {
	return 0, ENOTTY
}

// socketpairInternal implements socketpair(AF_UNIX, SOCK_STREAM).
func (t *Thread) socketpairInternal() (int, int, Errno) {
	ab := newPipeBuffer("unix-a2b")
	ba := newPipeBuffer("unix-b2a")
	ab.readers, ab.writers = 1, 1
	ba.readers, ba.writers = 1, 1
	a := newSockEnd(t.k, ba, ab)
	b := newSockEnd(t.k, ab, ba)
	afd, errno := t.task.fds.Alloc(a)
	if errno != OK {
		return -1, -1, errno
	}
	bfd, errno := t.task.fds.Alloc(b)
	if errno != OK {
		t.task.fds.Close(t, afd)
		return -1, -1, errno
	}
	return afd, bfd, OK
}

// SockPeer wires two already-created sockEnds across processes: CiderPress
// and the eventpump use a pre-connected socket pair whose ends live in
// different tasks. InstallSocketPair allocates one end in each task.
func InstallSocketPair(t1 *Thread, t2 *Thread) (fd1, fd2 int, errno Errno) {
	ab := newPipeBuffer("unix-a2b")
	ba := newPipeBuffer("unix-b2a")
	ab.readers, ab.writers = 1, 1
	ba.readers, ba.writers = 1, 1
	a := newSockEnd(t1.k, ba, ab)
	b := newSockEnd(t2.k, ab, ba)
	fd1, errno = t1.task.fds.Alloc(a)
	if errno != OK {
		return -1, -1, errno
	}
	fd2, errno = t2.task.fds.Alloc(b)
	if errno != OK {
		t1.task.fds.Close(t1, fd1)
		return -1, -1, errno
	}
	return fd1, fd2, OK
}
