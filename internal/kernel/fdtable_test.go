package kernel

// Refcount tests for the FDTable under dup/fork/close interleavings: the
// shared open file description must be closed exactly once, exactly when
// the last descriptor referencing it drops, regardless of which table
// (parent or forked child) closes last — and a failed dup (EMFILE) must
// not disturb the count. Part of the error-path burn-down: an off-by-one
// here either leaks the description (caught by Kernel.LeakCheck) or
// closes it out from under a live descriptor.

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/prog"
	"repro/internal/sim"
)

// countingFile records Close calls; everything else is trivially ready.
type countingFile struct {
	closes int
}

func (f *countingFile) Read(*Thread, []byte) (int, Errno) { return 0, OK }
func (f *countingFile) Write(t *Thread, b []byte) (int, Errno) {
	return len(b), OK
}
func (f *countingFile) Close(*Thread) Errno                  { f.closes++; return OK }
func (f *countingFile) Poll() PollMask                       { return PollIn | PollOut }
func (f *countingFile) PollQueues(PollMask) []*sim.WaitQueue { return nil }
func (f *countingFile) Ioctl(*Thread, uint64, uint64) (uint64, Errno) {
	return 0, ENOTTY
}

// op is one step of an interleaving: close descriptor fd in table tab
// (0 = parent, 1 = forked child).
type fdOp struct {
	tab int
	fd  int
}

func TestFDTableDupForkCloseOrders(t *testing.T) {
	// Every schedule starts from the same shape: parent allocs the file at
	// fd 0, dups it to fd 1, then forks. Three descriptors — parent 0,
	// parent 1, child 0 — share one description (the child's table drops
	// the dup'd fd 1 first, so each schedule exercises a distinct slot mix).
	cases := []struct {
		name  string
		order []fdOp
	}{
		{"parent-first", []fdOp{{0, 0}, {0, 1}, {1, 0}}},
		{"child-first", []fdOp{{1, 0}, {0, 0}, {0, 1}}},
		{"interleaved", []fdOp{{0, 1}, {1, 0}, {0, 0}}},
		{"dup-last", []fdOp{{1, 0}, {0, 0}, {0, 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := &countingFile{}
			parent := NewFDTable()
			if fd, errno := parent.Alloc(f); fd != 0 || errno != OK {
				t.Fatalf("Alloc = %d, %v", fd, errno)
			}
			if fd, errno := parent.Dup(0); fd != 1 || errno != OK {
				t.Fatalf("Dup = %d, %v", fd, errno)
			}
			child := parent.Fork()
			if errno := child.Close(nil, 1); errno != OK {
				t.Fatalf("child close dup: %v", errno)
			}
			tabs := [2]*FDTable{parent, child}
			for i, op := range tc.order {
				if errno := tabs[op.tab].Close(nil, op.fd); errno != OK {
					t.Fatalf("step %d close(tab %d, fd %d): %v", i, op.tab, op.fd, errno)
				}
				want := 0
				if i == len(tc.order)-1 {
					want = 1
				}
				if f.closes != want {
					t.Fatalf("step %d: closes = %d, want %d (close only on last ref)", i, f.closes, want)
				}
			}
			if parent.Count() != 0 || child.Count() != 0 {
				t.Fatalf("counts = %d/%d after full close", parent.Count(), child.Count())
			}
			// Double close must be EBADF, not a second File.Close.
			if errno := parent.Close(nil, 0); errno != EBADF {
				t.Fatalf("double close: %v, want EBADF", errno)
			}
			if f.closes != 1 {
				t.Fatalf("closes = %d after double close", f.closes)
			}
		})
	}
}

// CloseAll (process exit) on both tables must also close exactly once.
func TestFDTableForkCloseAll(t *testing.T) {
	f := &countingFile{}
	parent := NewFDTable()
	parent.Alloc(f)
	parent.Dup(0)
	child := parent.Fork()
	parent.CloseAll(nil)
	if f.closes != 0 {
		t.Fatalf("closes = %d with child still live", f.closes)
	}
	child.CloseAll(nil)
	if f.closes != 1 {
		t.Fatalf("closes = %d after both exits", f.closes)
	}
}

// A dup or alloc denied with EMFILE at the table limit must leave the
// refcounts untouched: the eventual closes still release the description
// exactly once.
func TestFDTableEMFILEKeepsRefcounts(t *testing.T) {
	f := &countingFile{}
	ft := NewFDTable()
	ft.limit = 2
	ft.Alloc(f)
	if fd, errno := ft.Dup(0); fd != 1 || errno != OK {
		t.Fatalf("Dup = %d, %v", fd, errno)
	}
	if _, errno := ft.Dup(0); errno != EMFILE {
		t.Fatalf("Dup at limit: %v, want EMFILE", errno)
	}
	if _, errno := ft.Alloc(&countingFile{}); errno != EMFILE {
		t.Fatalf("Alloc at limit: %v, want EMFILE", errno)
	}
	ft.Close(nil, 0)
	if f.closes != 0 {
		t.Fatalf("closes = %d with fd 1 live", f.closes)
	}
	ft.Close(nil, 1)
	if f.closes != 1 {
		t.Fatalf("closes = %d, want 1 (failed dup must not have bumped refs)", f.closes)
	}
}

// End-to-end: an injected EMFILE on the dup syscall surfaces to the
// caller, and the fds it failed to mint do not leak — the process exits
// with a clean descriptor table (LeakCheck would flag the kernel, and the
// pipe's close path runs exactly like the unit schedules above).
func TestDupInjectedEMFILE(t *testing.T) {
	e := newEnv(t, ProfileLinuxVanilla)
	e.k.EnableFaults(fault.NewInjector(fault.Plan{Name: "dup-emfile", Seed: 1, Rules: []fault.Rule{
		{Op: fault.OpSyscall, Match: "android/dup", Errno: int(EMFILE), Nth: 2},
	}}))
	var first, second, third SyscallRet
	e.install(t, "/bin/dupstorm", "dupstorm", func(c *prog.Call) uint64 {
		th := c.Ctx.(*Thread)
		p := th.Syscall(SysPipe, nil)
		first = th.Syscall(SysDup, &SyscallArgs{I: [6]uint64{p.R0}})
		second = th.Syscall(SysDup, &SyscallArgs{I: [6]uint64{p.R0}})
		third = th.Syscall(SysDup, &SyscallArgs{I: [6]uint64{p.R0}})
		return 0
	})
	e.run(t, "/bin/dupstorm", nil)
	if first.Errno != OK {
		t.Fatalf("dup 1: %v", first.Errno)
	}
	if second.Errno != EMFILE {
		t.Fatalf("dup 2: %v, want injected EMFILE", second.Errno)
	}
	if third.Errno != OK {
		t.Fatalf("dup 3: %v (injection must be one-shot)", third.Errno)
	}
	if err := e.k.LeakCheck(); err != nil {
		t.Fatalf("leak after EMFILE storm: %v", err)
	}
}
