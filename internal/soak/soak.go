// Package soak drives the paper's Fig. 5/6 batteries under a matrix of
// deterministic fault schedules and asserts the three error-path
// invariants this repo's kernel promises:
//
//   - determinism — a (seed, plan) pair produces bit-identical results
//     and traces at any host parallelism (jobs=1 vs jobs=N),
//   - no leaks — kernel.LeakCheck passes after every battery, faulted
//     or clean: failed syscalls, killed processes and dead ports must
//     release every descriptor, mapping and IPC right,
//   - no deadlocks — injected EINTR storms, ENOMEM, EIO and Mach queue
//     pressure may fail benchmark cells, but must never wedge the sim.
//
// Benchmark cells failing under injection is expected and acceptable;
// the soak criteria are about how the kernel fails, not whether the
// benchmark survives.
package soak

import (
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/lmbench"
	"repro/internal/replay"
	"repro/internal/runner"
	"repro/internal/services"
	"repro/internal/trace"
)

// Schedule is one named fault plan in the soak matrix.
type Schedule struct {
	// Name labels the schedule in reports.
	Name string
	// Desc says what failure class the schedule exercises.
	Desc string
	// Plan is the seeded fault plan armed on every cell's System.
	Plan fault.Plan
	// Services boots the launchd service tree in every cell that has an
	// iOS layer and runs a Mach service client app alongside the
	// benchmark, so crash schedules have daemons to kill, a supervisor
	// to respawn them, and stranded clients to recover.
	Services bool
	// Pressure boots the memory-balloon workloads alongside the benchmark:
	// band-assigned processes that inflate their footprint round by round,
	// register pressure listeners on both personas, and shed cache chunks
	// when notified — the OpMemPressure rules storm them by path.
	Pressure bool
	// FDHog boots the descriptor-exhaustion apps: one per persona, each
	// lowering its own RLIMIT_NOFILE and driving the fd table into EMFILE
	// and back out, leak-free.
	FDHog bool
}

// Schedules is the soak matrix: one clean control plus one schedule per
// fault class the kernel must survive.
func Schedules() []Schedule {
	return []Schedule{
		{
			Name: "clean",
			Desc: "no faults — the leak-check and determinism control",
			Plan: fault.Plan{Name: "clean", Seed: 1},
		},
		{
			Name: "eintr-storm",
			Desc: "signal-interrupt pressure on every blocking wait",
			Plan: fault.Plan{Name: "eintr-storm", Seed: 0x5eed0001, Rules: []fault.Rule{
				{Op: fault.OpPark, Match: "waitq:pipe", Every: 3},
				{Op: fault.OpPark, Match: "waitq:unix-*", Every: 4},
				{Op: fault.OpPark, Match: "select", Every: 3},
				{Op: fault.OpPark, Match: "sleep", Every: 7},
				{Op: fault.OpPark, Match: "waitq:wait4", Every: 5},
			}},
		},
		{
			Name: "errno-storm",
			Desc: "transient errno injection at syscall dispatch",
			// Injected errnos are CANONICAL (Linux) numbers: the dispatch
			// path translates to BSD numbering for iOS-persona TLS. An
			// earlier version injected 35 here "as EAGAIN" — that is BSD's
			// number; canonically 35 is EDEADLK, so the same rule surfaced
			// as would-block on one persona and deadlock on the other (the
			// differential oracle's errno-mapping finding).
			Plan: fault.Plan{Name: "errno-storm", Seed: 0x5eed0002, Rules: []fault.Rule{
				{Op: fault.OpSyscall, Match: "*/read", Errno: 4 /* EINTR */, Every: 11},
				{Op: fault.OpSyscall, Match: "*/write", Errno: 11 /* EAGAIN (canonical) */, Every: 13},
				{Op: fault.OpSyscall, Match: "*/dup", Errno: 24 /* EMFILE */, Every: 5},
				{Op: fault.OpSyscall, Match: "*/open", Errno: 4 /* EINTR */, Every: 9},
			}},
		},
		{
			Name: "enomem",
			Desc: "allocation failure at arbitrary mapping sites",
			Plan: fault.Plan{Name: "enomem", Seed: 0x5eed0003, Rules: []fault.Rule{
				{Op: fault.OpMemMap, Errno: 12 /* ENOMEM */, Every: 97},
			}},
		},
		{
			Name: "vfs-eio",
			Desc: "storage I/O errors, full disk, and latency spikes",
			Plan: fault.Plan{Name: "vfs-eio", Seed: 0x5eed0004, Rules: []fault.Rule{
				{Op: fault.OpVFS, Match: "lookup:*", Errno: 5 /* EIO */, Every: 41},
				{Op: fault.OpVFS, Match: "create:*", Errno: 28 /* ENOSPC */, Every: 17},
				{Op: fault.OpVFS, Match: "lookup:*", Delay: 3 * time.Millisecond, Every: 29},
			}},
		},
		{
			Name: "mach-pressure",
			Desc: "Mach queue overflow and interrupted mach_msg",
			Plan: fault.Plan{Name: "mach-pressure", Seed: 0x5eed0005, Rules: []fault.Rule{
				{Op: fault.OpMachSend, QLimit: 1, Every: 3},
				{Op: fault.OpMachSend, Errno: 1, Every: 19},
				{Op: fault.OpMachRecv, Errno: 1, Every: 17},
				{Op: fault.OpPark, Match: "waitq:mach_snd", Every: 5},
				{Op: fault.OpPark, Match: "waitq:mach_rcv", Every: 7},
			}},
		},
		{
			Name:     "daemon-crash",
			Desc:     "fatal faults inside the service daemons; launchd KeepAlive must respawn them and clients must re-resolve",
			Services: true,
			Plan: fault.Plan{Name: "daemon-crash", Seed: 0x5eed0006, Rules: []fault.Rule{
				// Nth hit counters are keyed by executable path and so
				// accumulate across respawned incarnations: two rules per
				// daemon kill both the original and its replacement. The
				// daemons' startup sequence alone is 4-5 syscalls, and the
				// in-cell service client drives tens more, so every rule is
				// reachable on the quick battery.
				{Op: fault.OpCrash, Match: services.NotifydPath, Nth: 4, Errno: 11 /* SIGSEGV */},
				{Op: fault.OpCrash, Match: services.NotifydPath, Nth: 16, Errno: 11},
				{Op: fault.OpCrash, Match: services.ConfigdPath, Nth: 6, Errno: 6 /* SIGABRT */},
				{Op: fault.OpCrash, Match: services.ConfigdPath, Nth: 20, Errno: 7 /* SIGBUS */},
				{Op: fault.OpCrash, Match: services.SyslogdPath, Nth: 8, Errno: 4 /* SIGILL */},
				// crashreporterd itself crashes while on duty; its respawn
				// must re-bind the host exception port.
				{Op: fault.OpCrash, Match: services.CrashReporterPath, Nth: 5, Errno: 11},
			}},
		},
		{
			Name:     "app-crash-storm",
			Desc:     "fatal faults in the apps themselves: crash reports written, kernels leak-free, daemons unharmed",
			Services: true,
			Plan: fault.Plan{Name: "app-crash-storm", Seed: 0x5eed0007, Rules: []fault.Rule{
				// The service client dies mid-conversation (iOS persona:
				// EXC_BAD_ACCESS through the exception path, then a crash
				// report); the hello payloads the proc tests exec die with
				// mixed dispositions on both personas.
				{Op: fault.OpCrash, Match: svcClientPath, Nth: 25, Errno: 11 /* SIGSEGV */},
				{Op: fault.OpCrash, Match: "/bin/hello-*", Nth: 2, Errno: 6 /* SIGABRT */, Count: 6},
			}},
		},
		{
			Name: "mem-pressure-storm",
			Desc: "jetsam storms: balloons inflate until the memorystatus ladder notifies, sheds, and kills in band order; launchd respawns the reaped daemon",
			// Daemons must be up so a critical episode has a daemon-band
			// victim for launchd's jetsam-aware KeepAlive to respawn.
			Services: true,
			Pressure: true,
			Plan: fault.Plan{Name: "mem-pressure-storm", Seed: 0x5eed0008, Rules: []fault.Rule{
				// Episodes are keyed per balloon path, so each balloon's warn
				// fires on its own 3rd inflation and its critical on its 6th;
				// the After gate skips exec-time materializations, which
				// happen before the balloons have set their jetsam bands.
				// The first critical reaps balloon-idle (the only idle-band
				// task); the second finds the idle band empty and takes the
				// daemon band's worst — which launchd respawns without
				// charging the crash-loop budget.
				{Op: fault.OpMemPressure, Match: "/bin/balloon-*", Nth: 3, After: balloonStart},
				{Op: fault.OpMemPressure, Match: "/bin/balloon-*", Nth: 6, Errno: 2 /* critical */, After: balloonStart},
				// A page-reclaim latency spike on a late inflation: only the
				// surviving balloon ever reaches its 8th round.
				{Op: fault.OpMemPressure, Match: "/bin/balloon-*", Nth: 8, Delay: 500 * time.Microsecond, After: balloonStart},
			}},
		},
		{
			Name:  "fd-exhaustion",
			Desc:  "descriptor-table exhaustion against a lowered RLIMIT_NOFILE on both personas: every rejection counted, every descriptor released",
			FDHog: true,
			// No injected faults: the storm is the workload itself. The
			// schedule still earns its soak slot via the determinism,
			// leak-freedom and rlimit-accounting audits.
			Plan: fault.Plan{Name: "fd-exhaustion", Seed: 0x5eed0009},
		},
	}
}

// ScheduleByName finds a schedule in the matrix.
func ScheduleByName(name string) (Schedule, bool) {
	for _, s := range Schedules() {
		if s.Name == name {
			return s, true
		}
	}
	return Schedule{}, false
}

// QuickTests is the reduced battery the verify smoke runs: the syscall
// and comm groups exercise dispatch, pipes, signals and the fd table,
// and the proc group exercises fork/exec — the in-simulation mapping
// sites the enomem schedule needs — at a fraction of the full battery's
// cost (the basic group is pure arithmetic and injects nothing).
func QuickTests() []lmbench.Test {
	var out []lmbench.Test
	for _, t := range lmbench.AllTests() {
		switch t.Group {
		case "syscall", "comm", "proc":
			out = append(out, t)
		}
	}
	return out
}

// Options configures a soak run.
type Options struct {
	// Jobs is the host parallelism handed to the battery engines;
	// <= 0 means GOMAXPROCS, 1 is the sequential reference execution.
	Jobs int
	// Full also runs the Fig. 6 (PassMark) battery per schedule.
	Full bool
	// Tests selects the lmbench subset; nil means the full battery.
	Tests []lmbench.Test
	// NoRecord disables per-cell scheduler-decision recording. Recording
	// is on by default so every failing cell arrives with a one-command
	// replay artifact; the canonical run's choice log is empty (the
	// Recorder takes every canonical choice), so recording cannot change
	// results — only failure diagnostics.
	NoRecord bool
	// ArtifactDir is where failing cells' replay artifacts are written;
	// "" means the host temp dir.
	ArtifactDir string
}

// Result is one schedule's soak outcome.
type Result struct {
	// Schedule names the plan that ran.
	Schedule string
	// Digest fingerprints everything deterministic about the run: cell
	// results, trace event streams, counters, and injection counts.
	// Equal digests across jobs values is the determinism criterion.
	Digest uint64
	// Cells is the number of simulated systems booted.
	Cells int
	// FailedCells counts benchmark cells that did not complete —
	// expected under injection, and part of the digest.
	FailedCells int
	// Injected totals fault-rule fires across all cells.
	Injected uint64
	// LatencyDigest fingerprints only the Fig. 5 latency table (test
	// names, per-configuration latencies, and failure marks). Crash
	// schedules that kill daemons between cells must leave this equal to
	// the clean schedule's: supervision may not perturb benchmark
	// virtual time.
	LatencyDigest uint64
	// Counters aggregates every cell's trace counters — the respawn,
	// throttle, exception and crash-report totals ride here into reports
	// and `cider stats`-style tooling.
	Counters map[string]uint64
	// Findings are hard invariant violations: deadlocks and leaks.
	// Empty findings means the schedule passed. When recording is on
	// (the default), each failing cell's findings are followed by a
	// "reproduce with: cider replay <path>" line naming its artifact.
	Findings []string
	// Artifacts lists the replay artifact files written for failing
	// cells, in cell order.
	Artifacts []string
}

// Err folds findings into an error (nil when the schedule passed).
func (r *Result) Err() error {
	if len(r.Findings) == 0 {
		return nil
	}
	return fmt.Errorf("soak: %s: %d finding(s):\n  %s", r.Schedule, len(r.Findings), joinIndent(r.Findings))
}

func joinIndent(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}

// RunSchedule runs one schedule's battery set and audits the invariants.
//
// Every cell — each (configuration, test) lmbench pair, each passmark
// configuration, and the Mach IPC cell — runs as an isolated System,
// sharded across opts.Jobs host workers and merged in canonical cell
// order, so the schedule digest is a fold of per-cell digests and any
// single cell can be re-executed (or replayed from an artifact)
// bit-identically on its own. Unless opts.NoRecord is set, each cell
// records its scheduler decisions, and any cell with findings emits a
// replay artifact whose path is appended to the findings.
func RunSchedule(s Schedule, opts Options) *Result {
	tests := opts.Tests
	if tests == nil {
		tests = lmbench.AllTests()
	}
	res := &Result{Schedule: s.Name}
	refs := CellRefs(tests, opts.Full)
	outcomes, _ := runner.Map(len(refs), opts.Jobs, func(i int) (cellOutcome, error) {
		if opts.NoRecord {
			return runCellRef(s, refs[i], nil), nil
		}
		rec := replay.NewRecorder(nil)
		o := runCellRef(s, refs[i], rec)
		o.fromRecorder(rec)
		return o, nil
	})
	res.merge(s, refs, outcomes, opts, 0)
	return res
}

// merge folds per-cell outcomes (in canonical order) into the Result
// and emits replay artifacts for failing cells.
func (r *Result) merge(s Schedule, refs []replay.CellRef, outcomes []cellOutcome, opts Options, exploreSeed uint64) {
	d := newDigest()
	d.str(s.Name)
	d.u64(s.Plan.Seed)
	ld := newDigest()
	for i := range outcomes {
		o := &outcomes[i]
		d.u64(uint64(i))
		d.u64(o.digest)
		if o.latPresent {
			ld.u64(o.latPart)
		}
		r.Cells++
		r.FailedCells += o.failed
		r.Injected += o.injected
		if o.counters != nil {
			if r.Counters == nil {
				r.Counters = map[string]uint64{}
			}
			for k, v := range o.counters {
				r.Counters[k] += v
			}
		}
		if len(o.findings) > 0 {
			r.Findings = append(r.Findings, o.findings...)
			if !opts.NoRecord {
				a := artifactForOutcome(s, o, exploreSeed)
				path := artifactPath(opts.ArtifactDir, s.Name, o.ref, exploreSeed)
				if werr := a.WriteFile(path); werr != nil {
					r.Findings = append(r.Findings, fmt.Sprintf("cell %s: artifact write failed: %v", o.ref, werr))
				} else {
					r.Findings = append(r.Findings, fmt.Sprintf(
						"cell %s: reproduce with: cider replay %s", o.ref, path))
					r.Artifacts = append(r.Artifacts, path)
				}
			}
		}
	}
	// Schedule-level effectiveness audits: a pressure schedule that reaps
	// nobody, or an fd schedule that never hits its lowered limit, is a
	// storm that silently stopped storming — treat it as a finding so the
	// verify smoke catches regressions in the governance machinery itself.
	if s.Pressure && r.Counters[trace.CounterJetsamKills] == 0 {
		r.Findings = append(r.Findings, fmt.Sprintf(
			"schedule %s: pressure storm reaped nothing (no %s across %d cells)",
			s.Name, trace.CounterJetsamKills, r.Cells))
	}
	if s.FDHog && r.Counters[trace.CounterRlimitHits] == 0 {
		r.Findings = append(r.Findings, fmt.Sprintf(
			"schedule %s: descriptor hogs never hit RLIMIT_NOFILE (no %s across %d cells)",
			s.Name, trace.CounterRlimitHits, r.Cells))
	}
	r.Digest = d.sum()
	r.LatencyDigest = ld.sum()
}

// supervisionCounters reads one cell's launchd KeepAlive counters.
func supervisionCounters(tr *trace.Session) (crashes, respawns, throttled uint64) {
	if tr == nil {
		return 0, 0, 0
	}
	for _, c := range tr.Counters() {
		switch c.Name {
		case trace.CounterLaunchdCrashes:
			crashes = c.Value
		case trace.CounterLaunchdRespawns:
			respawns = c.Value
		case trace.CounterLaunchdThrottled:
			throttled = c.Value
		}
	}
	return crashes, respawns, throttled
}

// digestSession folds a trace session's event stream and counters into
// the digest. The event ring is bounded, so this sees the tail of long
// runs — still a deterministic function of the simulation.
func digestSession(d *digest, tr *trace.Session) {
	if tr == nil {
		d.str("no-trace")
		return
	}
	for _, ev := range tr.Events() {
		d.u64(ev.Seq)
		d.u64(uint64(ev.At))
		d.u64(uint64(ev.Kind))
		d.str(ev.Proc)
		d.u64(uint64(ev.ProcID))
		d.u64(uint64(ev.Sched))
		d.u64(uint64(ev.Persona))
		d.u64(uint64(ev.Sysno))
		d.str(ev.Name)
		d.u64(uint64(int64(ev.Errno)))
		d.str(ev.Detail)
	}
	for _, c := range tr.Counters() {
		d.str(c.Name)
		d.u64(c.Value)
	}
}

// GovernanceCounters runs the two resource-governance schedules
// (mem-pressure-storm and fd-exhaustion) over a minimal one-test battery
// and returns their merged counters — the `cider stats` jetsam/pressure/
// rlimit section. An error means a governance invariant failed, which
// stats surfaces rather than printing misleading numbers.
func GovernanceCounters(jobs int) (map[string]uint64, error) {
	var tests []lmbench.Test
	for _, t := range lmbench.AllTests() {
		if t.Name == "null syscall" {
			tests = append(tests, t)
		}
	}
	merged := map[string]uint64{}
	for _, name := range []string{"mem-pressure-storm", "fd-exhaustion"} {
		s, ok := ScheduleByName(name)
		if !ok {
			return nil, fmt.Errorf("soak: governance schedule %q missing", name)
		}
		r := RunSchedule(s, Options{Jobs: jobs, Tests: tests, NoRecord: true})
		if err := r.Err(); err != nil {
			return nil, err
		}
		for k, v := range r.Counters {
			merged[k] += v
		}
	}
	return merged, nil
}

// Run executes every schedule in the matrix.
func Run(schedules []Schedule, opts Options) []*Result {
	out := make([]*Result, 0, len(schedules))
	for _, s := range schedules {
		out = append(out, RunSchedule(s, opts))
	}
	return out
}

// VerifyDeterminism runs one schedule sequentially and at jobs host
// workers and compares digests — the jobs=1 vs jobs=N bit-identity
// criterion.
func VerifyDeterminism(s Schedule, jobs int, opts Options) error {
	seq := opts
	seq.Jobs = 1
	par := opts
	par.Jobs = jobs
	a := RunSchedule(s, seq)
	b := RunSchedule(s, par)
	if a.Digest != b.Digest {
		return fmt.Errorf("soak: %s: digest diverged: jobs=1 %016x vs jobs=%d %016x", s.Name, a.Digest, jobs, b.Digest)
	}
	return nil
}

// digest is FNV-1a 64, built up incrementally over mixed-type records.
type digest struct{ h uint64 }

func newDigest() *digest { return &digest{h: 0xcbf29ce484222325} }

func (d *digest) u64(v uint64) {
	for i := 0; i < 8; i++ {
		d.h ^= uint64(byte(v >> (8 * i)))
		d.h *= 0x100000001b3
	}
}

func (d *digest) str(s string) {
	for i := 0; i < len(s); i++ {
		d.h ^= uint64(s[i])
		d.h *= 0x100000001b3
	}
	d.u64(uint64(len(s)))
}

func (d *digest) sum() uint64 { return d.h }
