// Package soak drives the paper's Fig. 5/6 batteries under a matrix of
// deterministic fault schedules and asserts the three error-path
// invariants this repo's kernel promises:
//
//   - determinism — a (seed, plan) pair produces bit-identical results
//     and traces at any host parallelism (jobs=1 vs jobs=N),
//   - no leaks — kernel.LeakCheck passes after every battery, faulted
//     or clean: failed syscalls, killed processes and dead ports must
//     release every descriptor, mapping and IPC right,
//   - no deadlocks — injected EINTR storms, ENOMEM, EIO and Mach queue
//     pressure may fail benchmark cells, but must never wedge the sim.
//
// Benchmark cells failing under injection is expected and acceptable;
// the soak criteria are about how the kernel fails, not whether the
// benchmark survives.
package soak

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ducttape"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/lmbench"
	"repro/internal/passmark"
	"repro/internal/prog"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/xnu"
)

// Schedule is one named fault plan in the soak matrix.
type Schedule struct {
	// Name labels the schedule in reports.
	Name string
	// Desc says what failure class the schedule exercises.
	Desc string
	// Plan is the seeded fault plan armed on every cell's System.
	Plan fault.Plan
	// Services boots the launchd service tree in every cell that has an
	// iOS layer and runs a Mach service client app alongside the
	// benchmark, so crash schedules have daemons to kill, a supervisor
	// to respawn them, and stranded clients to recover.
	Services bool
}

// Schedules is the soak matrix: one clean control plus one schedule per
// fault class the kernel must survive.
func Schedules() []Schedule {
	return []Schedule{
		{
			Name: "clean",
			Desc: "no faults — the leak-check and determinism control",
			Plan: fault.Plan{Name: "clean", Seed: 1},
		},
		{
			Name: "eintr-storm",
			Desc: "signal-interrupt pressure on every blocking wait",
			Plan: fault.Plan{Name: "eintr-storm", Seed: 0x5eed0001, Rules: []fault.Rule{
				{Op: fault.OpPark, Match: "waitq:pipe", Every: 3},
				{Op: fault.OpPark, Match: "waitq:unix-*", Every: 4},
				{Op: fault.OpPark, Match: "select", Every: 3},
				{Op: fault.OpPark, Match: "sleep", Every: 7},
				{Op: fault.OpPark, Match: "waitq:wait4", Every: 5},
			}},
		},
		{
			Name: "errno-storm",
			Desc: "transient errno injection at syscall dispatch",
			// Injected errnos are CANONICAL (Linux) numbers: the dispatch
			// path translates to BSD numbering for iOS-persona TLS. An
			// earlier version injected 35 here "as EAGAIN" — that is BSD's
			// number; canonically 35 is EDEADLK, so the same rule surfaced
			// as would-block on one persona and deadlock on the other (the
			// differential oracle's errno-mapping finding).
			Plan: fault.Plan{Name: "errno-storm", Seed: 0x5eed0002, Rules: []fault.Rule{
				{Op: fault.OpSyscall, Match: "*/read", Errno: 4 /* EINTR */, Every: 11},
				{Op: fault.OpSyscall, Match: "*/write", Errno: 11 /* EAGAIN (canonical) */, Every: 13},
				{Op: fault.OpSyscall, Match: "*/dup", Errno: 24 /* EMFILE */, Every: 5},
				{Op: fault.OpSyscall, Match: "*/open", Errno: 4 /* EINTR */, Every: 9},
			}},
		},
		{
			Name: "enomem",
			Desc: "allocation failure at arbitrary mapping sites",
			Plan: fault.Plan{Name: "enomem", Seed: 0x5eed0003, Rules: []fault.Rule{
				{Op: fault.OpMemMap, Errno: 12 /* ENOMEM */, Every: 97},
			}},
		},
		{
			Name: "vfs-eio",
			Desc: "storage I/O errors, full disk, and latency spikes",
			Plan: fault.Plan{Name: "vfs-eio", Seed: 0x5eed0004, Rules: []fault.Rule{
				{Op: fault.OpVFS, Match: "lookup:*", Errno: 5 /* EIO */, Every: 41},
				{Op: fault.OpVFS, Match: "create:*", Errno: 28 /* ENOSPC */, Every: 17},
				{Op: fault.OpVFS, Match: "lookup:*", Delay: 3 * time.Millisecond, Every: 29},
			}},
		},
		{
			Name: "mach-pressure",
			Desc: "Mach queue overflow and interrupted mach_msg",
			Plan: fault.Plan{Name: "mach-pressure", Seed: 0x5eed0005, Rules: []fault.Rule{
				{Op: fault.OpMachSend, QLimit: 1, Every: 3},
				{Op: fault.OpMachSend, Errno: 1, Every: 19},
				{Op: fault.OpMachRecv, Errno: 1, Every: 17},
				{Op: fault.OpPark, Match: "waitq:mach_snd", Every: 5},
				{Op: fault.OpPark, Match: "waitq:mach_rcv", Every: 7},
			}},
		},
		{
			Name:     "daemon-crash",
			Desc:     "fatal faults inside the service daemons; launchd KeepAlive must respawn them and clients must re-resolve",
			Services: true,
			Plan: fault.Plan{Name: "daemon-crash", Seed: 0x5eed0006, Rules: []fault.Rule{
				// Nth hit counters are keyed by executable path and so
				// accumulate across respawned incarnations: two rules per
				// daemon kill both the original and its replacement. The
				// daemons' startup sequence alone is 4-5 syscalls, and the
				// in-cell service client drives tens more, so every rule is
				// reachable on the quick battery.
				{Op: fault.OpCrash, Match: services.NotifydPath, Nth: 4, Errno: 11 /* SIGSEGV */},
				{Op: fault.OpCrash, Match: services.NotifydPath, Nth: 16, Errno: 11},
				{Op: fault.OpCrash, Match: services.ConfigdPath, Nth: 6, Errno: 6 /* SIGABRT */},
				{Op: fault.OpCrash, Match: services.ConfigdPath, Nth: 20, Errno: 7 /* SIGBUS */},
				{Op: fault.OpCrash, Match: services.SyslogdPath, Nth: 8, Errno: 4 /* SIGILL */},
				// crashreporterd itself crashes while on duty; its respawn
				// must re-bind the host exception port.
				{Op: fault.OpCrash, Match: services.CrashReporterPath, Nth: 5, Errno: 11},
			}},
		},
		{
			Name:     "app-crash-storm",
			Desc:     "fatal faults in the apps themselves: crash reports written, kernels leak-free, daemons unharmed",
			Services: true,
			Plan: fault.Plan{Name: "app-crash-storm", Seed: 0x5eed0007, Rules: []fault.Rule{
				// The service client dies mid-conversation (iOS persona:
				// EXC_BAD_ACCESS through the exception path, then a crash
				// report); the hello payloads the proc tests exec die with
				// mixed dispositions on both personas.
				{Op: fault.OpCrash, Match: svcClientPath, Nth: 25, Errno: 11 /* SIGSEGV */},
				{Op: fault.OpCrash, Match: "/bin/hello-*", Nth: 2, Errno: 6 /* SIGABRT */, Count: 6},
			}},
		},
	}
}

// ScheduleByName finds a schedule in the matrix.
func ScheduleByName(name string) (Schedule, bool) {
	for _, s := range Schedules() {
		if s.Name == name {
			return s, true
		}
	}
	return Schedule{}, false
}

// QuickTests is the reduced battery the verify smoke runs: the syscall
// and comm groups exercise dispatch, pipes, signals and the fd table,
// and the proc group exercises fork/exec — the in-simulation mapping
// sites the enomem schedule needs — at a fraction of the full battery's
// cost (the basic group is pure arithmetic and injects nothing).
func QuickTests() []lmbench.Test {
	var out []lmbench.Test
	for _, t := range lmbench.AllTests() {
		switch t.Group {
		case "syscall", "comm", "proc":
			out = append(out, t)
		}
	}
	return out
}

// Options configures a soak run.
type Options struct {
	// Jobs is the host parallelism handed to the battery engines;
	// <= 0 means GOMAXPROCS, 1 is the sequential reference execution.
	Jobs int
	// Full also runs the Fig. 6 (PassMark) battery per schedule.
	Full bool
	// Tests selects the lmbench subset; nil means the full battery.
	Tests []lmbench.Test
}

// Result is one schedule's soak outcome.
type Result struct {
	// Schedule names the plan that ran.
	Schedule string
	// Digest fingerprints everything deterministic about the run: cell
	// results, trace event streams, counters, and injection counts.
	// Equal digests across jobs values is the determinism criterion.
	Digest uint64
	// Cells is the number of simulated systems booted.
	Cells int
	// FailedCells counts benchmark cells that did not complete —
	// expected under injection, and part of the digest.
	FailedCells int
	// Injected totals fault-rule fires across all cells.
	Injected uint64
	// LatencyDigest fingerprints only the Fig. 5 latency table (test
	// names, per-configuration latencies, and failure marks). Crash
	// schedules that kill daemons between cells must leave this equal to
	// the clean schedule's: supervision may not perturb benchmark
	// virtual time.
	LatencyDigest uint64
	// Counters aggregates every cell's trace counters — the respawn,
	// throttle, exception and crash-report totals ride here into reports
	// and `cider stats`-style tooling.
	Counters map[string]uint64
	// Findings are hard invariant violations: deadlocks and leaks.
	// Empty findings means the schedule passed.
	Findings []string
}

// Err folds findings into an error (nil when the schedule passed).
func (r *Result) Err() error {
	if len(r.Findings) == 0 {
		return nil
	}
	return fmt.Errorf("soak: %s: %d finding(s):\n  %s", r.Schedule, len(r.Findings), joinIndent(r.Findings))
}

func joinIndent(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}

// RunSchedule runs one schedule's battery set and audits the invariants.
func RunSchedule(s Schedule, opts Options) *Result {
	tests := opts.Tests
	if tests == nil {
		tests = lmbench.AllTests()
	}
	res := &Result{Schedule: s.Name}
	d := newDigest()
	d.str(s.Name)
	d.u64(s.Plan.Seed)

	cells := lmbench.Cells(tests)
	systems := make([]*core.System, len(cells))
	rep, err := lmbench.RunFigure5Opts(tests, lmbench.Options{
		Jobs: opts.Jobs,
		OnSystem: func(c lmbench.Cell, sys *core.System) {
			sys.EnableTrace()
			sys.EnableFaults(s.Plan)
			if s.Services {
				bootCellServices(sys)
			}
			systems[c.Index] = sys
		},
	})
	res.Cells += len(cells)
	ld := newDigest()
	if err != nil {
		d.str("lmbench-err:" + err.Error())
		ld.str("lmbench-err:" + err.Error())
		var dl *sim.ErrDeadlock
		if errors.As(err, &dl) {
			res.Findings = append(res.Findings, fmt.Sprintf("lmbench deadlocked under %q: %v", s.Name, err))
		}
	} else {
		for _, t := range tests {
			d.str(t.Name)
			ld.str(t.Name)
			for _, conf := range lmbench.Configurations() {
				d.u64(uint64(rep.Latency[t.Name][conf.Name]))
				ld.u64(uint64(rep.Latency[t.Name][conf.Name]))
				if rep.Failed[t.Name][conf.Name] {
					d.u64(1)
					ld.u64(1)
					res.FailedCells++
				} else {
					d.u64(0)
					ld.u64(0)
				}
			}
		}
	}
	res.LatencyDigest = ld.sum()
	res.auditCells(d, systems)

	if opts.Full {
		confs := passmark.Configurations()
		pmSystems := make([]*core.System, len(confs))
		pmRep, pmErr := passmark.RunFigure6Opts(passmark.AllTests(), passmark.Options{
			Jobs: opts.Jobs,
			OnSystem: func(c passmark.Cell, sys *core.System) {
				sys.EnableTrace()
				sys.EnableFaults(s.Plan)
				pmSystems[c.Index] = sys
			},
		})
		res.Cells += len(confs)
		if pmErr != nil {
			d.str("passmark-err:" + pmErr.Error())
			var dl *sim.ErrDeadlock
			if errors.As(pmErr, &dl) {
				res.Findings = append(res.Findings, fmt.Sprintf("passmark deadlocked under %q: %v", s.Name, pmErr))
			}
		} else {
			for _, t := range passmark.AllTests() {
				d.str(t.Name)
				for _, conf := range confs {
					d.u64(uint64(int64(pmRep.Score[t.Name][conf.Name] * 1e6)))
					if pmRep.Errors[t.Name][conf.Name] != nil {
						d.u64(1)
						res.FailedCells++
					} else {
						d.u64(0)
					}
				}
			}
		}
		res.auditCells(d, pmSystems)
	}

	res.runMachCell(s, d)

	res.Digest = d.sum()
	return res
}

// runMachCell drives a purpose-built Mach IPC workload under the
// schedule. The Fig. 5/6 batteries never call mach_msg (iOS benchmark
// syscalls ride the BSD half of the XNU table), so the soak matrix
// exercises the duct-taped subsystem directly: cross-task messaging
// under queue pressure, interrupted sends/receives with bounded retry,
// dead-name notifications, and task-exit teardown of a space still
// holding live receive rights.
func (r *Result) runMachCell(s Schedule, d *digest) {
	sm := sim.New()
	k, err := kernel.New(sm, kernel.Config{
		Profile: kernel.ProfileCider, Device: hw.Nexus7(),
		Root: vfs.New(), Registry: prog.NewRegistry(),
	})
	if err != nil {
		r.Findings = append(r.Findings, fmt.Sprintf("mach cell: boot: %v", err))
		return
	}
	k.InstallLinuxTable()
	k.RegisterBinFmt(&kernel.ELFLoader{})
	ipc, err := xnu.InstallIPC(k, ducttape.NewEnv(k))
	if err != nil {
		r.Findings = append(r.Findings, fmt.Sprintf("mach cell: ipc: %v", err))
		return
	}
	tr := trace.NewSession("mach-cell")
	sm.SetSink(tr)
	k.SetTracer(tr)
	in := fault.NewInjector(s.Plan)
	in.OnInject = func(op fault.Op, key string, out fault.Outcome, now time.Duration) {
		proc, id := "", 0
		if cur := sm.Current(); cur != nil {
			proc, id = cur.Name(), cur.ID()
		}
		tr.Fault(proc, id, op.String(), key, out.Errno, now)
	}
	k.EnableFaults(in)

	const msgs = 48
	const tick = 100 * time.Microsecond
	var sent, received, retries, gaveUp uint64
	var notified bool
	serverReady := false
	ready := sim.NewWaitQueue("soak-ready")

	spawn := func(key string, body func(*kernel.Thread)) error {
		k.Registry().MustRegister(key, func(c *prog.Call) uint64 {
			body(c.Ctx.(*kernel.Thread))
			return 0
		})
		bin, berr := prog.StaticELF(key)
		if berr != nil {
			return berr
		}
		if werr := k.Root().(*vfs.FS).WriteFile("/bin/"+key, bin); werr != nil {
			return werr
		}
		_, serr := k.StartProcess("/bin/"+key, nil)
		return serr
	}

	err = spawn("soak-mach-server", func(th *kernel.Thread) {
		port, kr := ipc.PortAllocate(th)
		if kr != xnu.KernSuccess {
			return
		}
		cr, _ := ipc.MakeSendRight(th, port)
		ipc.SetBootstrapPort(cr.Port)
		serverReady = true
		ready.WakeAll(th.Proc(), sim.WakeNormal)
		// Bounded receive loop: injected interrupts and timeouts retry,
		// but the loop always terminates even if the client gives up.
		for attempts := 0; received < msgs && attempts < msgs*8; attempts++ {
			msg, rkr := ipc.Receive(th, port, 2*tick)
			if rkr == xnu.KernSuccess {
				received++
				_ = msg
			} else {
				retries++
				th.Charge(tick / 4)
			}
		}
		// Exit without destroying the port: task-exit teardown must reap
		// the receive right and fail any still-blocked sender.
	})
	if err == nil {
		err = spawn("soak-mach-client", func(th *kernel.Thread) {
			for !serverReady {
				// An injected interrupt just re-checks the flag and
				// re-parks; the loop condition is the real gate.
				if ready.Wait(th.Proc()) == sim.WakeInterrupted {
					continue
				}
			}
			for i := 0; i < msgs; i++ {
				ok := false
				for attempts := 0; attempts < 8; attempts++ {
					kr := ipc.Send(th, xnu.BootstrapName,
						&xnu.Message{ID: int32(i), Body: []byte("soak")}, 2*tick)
					if kr == xnu.KernSuccess {
						ok = true
						break
					}
					retries++
					th.Charge(tick / 4)
				}
				if ok {
					sent++
				} else {
					gaveUp++
				}
			}
		})
	}
	if err == nil {
		err = spawn("soak-mach-notify", func(th *kernel.Thread) {
			watched, kr := ipc.PortAllocate(th)
			if kr != xnu.KernSuccess {
				return
			}
			notify, kr := ipc.PortAllocate(th)
			if kr != xnu.KernSuccess {
				return
			}
			if kr = ipc.RequestDeadNameNotification(th, watched, notify); kr != xnu.KernSuccess {
				return
			}
			ipc.PortDestroy(th, watched)
			for attempts := 0; attempts < 8; attempts++ {
				msg, rkr := ipc.Receive(th, notify, 2*tick)
				if rkr == xnu.KernSuccess && msg.ID == xnu.MsgDeadNameNotification {
					notified = true
					break
				}
				th.Charge(tick / 4)
			}
		})
	}
	if err != nil {
		r.Findings = append(r.Findings, fmt.Sprintf("mach cell: spawn: %v", err))
		return
	}
	r.Cells++
	if rerr := sm.Run(); rerr != nil {
		d.str("mach-err:" + rerr.Error())
		var dl *sim.ErrDeadlock
		if errors.As(rerr, &dl) {
			r.Findings = append(r.Findings, fmt.Sprintf("mach cell deadlocked under %q: %v", s.Name, rerr))
		}
		return
	}
	if s.Name == "clean" {
		// Without faults the workload must complete perfectly; under
		// injection partial completion is the point.
		if sent != msgs || received != msgs || !notified {
			r.Findings = append(r.Findings, fmt.Sprintf(
				"mach cell: clean run incomplete: sent=%d received=%d notified=%v", sent, received, notified))
		}
	}
	d.str("mach-cell")
	d.u64(sent)
	d.u64(received)
	d.u64(retries)
	d.u64(gaveUp)
	if notified {
		d.u64(1)
	} else {
		d.u64(0)
	}
	fired := in.Fired()
	r.Injected += fired
	d.u64(fired)
	digestSession(d, tr)
	r.collectCounters(tr)
	if lerr := k.LeakCheck(); lerr != nil {
		r.Findings = append(r.Findings, fmt.Sprintf("mach cell (%s): %v", s.Name, lerr))
	}
}

// auditCells digests each cell's trace and injection state, runs the
// post-battery leak check, and audits the supervision counters: every
// crash launchd observed must be answered by a respawn or a deliberate
// throttle, with at most one crash still in flight when the simulation
// wound down (the benchmark exiting ends the run mid-backoff).
func (r *Result) auditCells(d *digest, systems []*core.System) {
	for i, sys := range systems {
		d.u64(uint64(i))
		if sys == nil {
			d.str("cell-missing")
			continue
		}
		if sys.Fault != nil {
			fired := sys.Fault.Fired()
			r.Injected += fired
			d.u64(fired)
		}
		digestSession(d, sys.Trace)
		r.collectCounters(sys.Trace)
		if crashes, respawns, throttled := supervisionCounters(sys.Trace); crashes > respawns+throttled+1 {
			r.Findings = append(r.Findings, fmt.Sprintf(
				"cell %d (%s): supervision lost services: %d crashes vs %d respawns + %d throttled",
				i, sys.Config, crashes, respawns, throttled))
		}
		if err := sys.Kernel.LeakCheck(); err != nil {
			r.Findings = append(r.Findings, fmt.Sprintf("cell %d (%s): %v", i, sys.Config, err))
		}
	}
}

// collectCounters folds one cell's trace counters into the result total.
func (r *Result) collectCounters(tr *trace.Session) {
	if tr == nil {
		return
	}
	if r.Counters == nil {
		r.Counters = map[string]uint64{}
	}
	for _, c := range tr.Counters() {
		r.Counters[c.Name] += c.Value
	}
}

// supervisionCounters reads one cell's launchd KeepAlive counters.
func supervisionCounters(tr *trace.Session) (crashes, respawns, throttled uint64) {
	if tr == nil {
		return 0, 0, 0
	}
	for _, c := range tr.Counters() {
		switch c.Name {
		case trace.CounterLaunchdCrashes:
			crashes = c.Value
		case trace.CounterLaunchdRespawns:
			respawns = c.Value
		case trace.CounterLaunchdThrottled:
			throttled = c.Value
		}
	}
	return crashes, respawns, throttled
}

// digestSession folds a trace session's event stream and counters into
// the digest. The event ring is bounded, so this sees the tail of long
// runs — still a deterministic function of the simulation.
func digestSession(d *digest, tr *trace.Session) {
	if tr == nil {
		d.str("no-trace")
		return
	}
	for _, ev := range tr.Events() {
		d.u64(ev.Seq)
		d.u64(uint64(ev.At))
		d.u64(uint64(ev.Kind))
		d.str(ev.Proc)
		d.u64(uint64(ev.ProcID))
		d.u64(uint64(ev.Sched))
		d.u64(uint64(ev.Persona))
		d.u64(uint64(ev.Sysno))
		d.str(ev.Name)
		d.u64(uint64(int64(ev.Errno)))
		d.str(ev.Detail)
	}
	for _, c := range tr.Counters() {
		d.str(c.Name)
		d.u64(c.Value)
	}
}

// Run executes every schedule in the matrix.
func Run(schedules []Schedule, opts Options) []*Result {
	out := make([]*Result, 0, len(schedules))
	for _, s := range schedules {
		out = append(out, RunSchedule(s, opts))
	}
	return out
}

// VerifyDeterminism runs one schedule sequentially and at jobs host
// workers and compares digests — the jobs=1 vs jobs=N bit-identity
// criterion.
func VerifyDeterminism(s Schedule, jobs int, opts Options) error {
	seq := opts
	seq.Jobs = 1
	par := opts
	par.Jobs = jobs
	a := RunSchedule(s, seq)
	b := RunSchedule(s, par)
	if a.Digest != b.Digest {
		return fmt.Errorf("soak: %s: digest diverged: jobs=1 %016x vs jobs=%d %016x", s.Name, a.Digest, jobs, b.Digest)
	}
	return nil
}

// digest is FNV-1a 64, built up incrementally over mixed-type records.
type digest struct{ h uint64 }

func newDigest() *digest { return &digest{h: 0xcbf29ce484222325} }

func (d *digest) u64(v uint64) {
	for i := 0; i < 8; i++ {
		d.h ^= uint64(byte(v >> (8 * i)))
		d.h *= 0x100000001b3
	}
}

func (d *digest) str(s string) {
	for i := 0; i < len(s); i++ {
		d.h ^= uint64(s[i])
		d.h *= 0x100000001b3
	}
	d.u64(uint64(len(s)))
}

func (d *digest) sum() uint64 { return d.h }
