package soak

import (
	"time"

	"repro/internal/abi"
	"repro/internal/bionic"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/mem"
	"repro/internal/prog"
)

// In-cell resource-governance workloads: the balloons the pressure
// schedules storm and the descriptor hogs the fd-exhaustion schedule
// runs. All of them are deterministic band-assigned processes whose only
// job is to push the kernel's governance machinery — footprint
// accounting, the memorystatus ladder, RLIMIT_NOFILE — through its
// degradation paths while the benchmark keeps running in the foreground.
const (
	// balloonIdlePath is the idle-band balloon: biggest footprint, first
	// to die when a critical episode fires.
	balloonIdlePath = "/bin/balloon-idle"
	// balloonBGPath is the background-band balloon: survives the storm
	// (daemons sit above background in the kill order).
	balloonBGPath = "/bin/balloon-bg"
	// balloonDroidPath is the Android-persona trim listener: small
	// ballast, sheds it on the first onTrimMemory delivery.
	balloonDroidPath = "/bin/balloon-droid"
	// fdHogIOSPath / fdHogDroidPath are the per-persona descriptor hogs.
	fdHogIOSPath   = "/bin/fd-hog-ios"
	fdHogDroidPath = "/bin/fd-hog-droid"
)

const (
	// balloonStart is when ballooning begins: after the band assignments
	// and pressure-listener registrations, which is what lets the
	// schedule's After gates skip exec-time materializations.
	balloonStart = 2 * time.Millisecond
	// balloonStagger separates the two iOS balloons' rounds in virtual
	// time so no two inflations ever tie on the clock.
	balloonStagger = 400 * time.Microsecond
	// balloonRounds is how many chunks each balloon inflates.
	balloonRounds = 8
)

// bootCellPressure starts the balloon workloads next to the benchmark.
// Like bootCellServices, failures are tolerated: a configuration without
// the needed layer simply runs fewer balloons, and the difference lands
// in the digest rather than as a host error.
func bootCellPressure(sys *core.System) {
	if sys.IOSFS != nil {
		balloons := []struct {
			path  string
			band  kernel.Band
			chunk uint64
			delay time.Duration
		}{
			{balloonIdlePath, kernel.BandIdle, 64 << 10, 0},
			{balloonBGPath, kernel.BandBackground, 32 << 10, balloonStagger},
		}
		for _, b := range balloons {
			b := b
			if err := sys.InstallIOSBinary(b.path, "soak"+b.path, nil, func(c *prog.Call) uint64 {
				runBalloon(c.Ctx.(*kernel.Thread), b.band, b.chunk, b.delay)
				return 0
			}); err != nil {
				continue
			}
			if _, err := sys.Start(b.path, nil); err != nil {
				continue
			}
		}
	}
	if sys.AndroidFS != nil {
		if err := sys.InstallStaticAndroidBinary(balloonDroidPath, "soak-balloon-droid", func(c *prog.Call) uint64 {
			runDroidListener(c.Ctx.(*kernel.Thread))
			return 0
		}); err == nil {
			sys.Start(balloonDroidPath, nil)
		}
	}
}

// runBalloon is the iOS balloon body: assign the jetsam band, register a
// dispatch-source pressure handler that sheds the oldest chunk, then
// inflate one chunk per round. Every round ends in a syscall — that is
// where a jetsam SIGKILL lands, so a reaped balloon dies at a
// deterministic point in its own loop.
func runBalloon(th *kernel.Thread, band kernel.Band, chunk uint64, delay time.Duration) {
	th.Kernel().Memorystatus().SetBand(th.Task(), band)
	lc := libsystem.Sys(th)
	as := th.Task().Mem()
	var mapped []uint64
	lc.DispatchSourceMemoryPressure(func(flags int) {
		// Cooperative cache shedding: drop the oldest chunk. The handler
		// runs on whichever thread crossed the watermark; unmapping only
		// touches this task's address-space structures, which tolerate
		// foreign-thread execution.
		if len(mapped) > 0 {
			as.Unmap(mapped[0])
			mapped = mapped[1:]
		}
	})
	sleepTick(th, balloonStart-th.Now()+delay)
	for i := 0; i < balloonRounds; i++ {
		if r, err := as.Map(0, chunk, mem.ProtRead|mem.ProtWrite, "[balloon]", false); err == nil {
			// Touch the mapping: zero-fill materialization is the
			// footprint-charge point the schedule's rules key on.
			r.Backing().Bytes()
			mapped = append(mapped, r.Base)
		}
		lc.GetPID()
		sleepTick(th, time.Millisecond)
	}
	// Wind-down heartbeat: stay alive (and killable) through the tail of
	// the storm, then deflate and exit clean.
	for i := 0; i < 16; i++ {
		lc.GetPID()
		sleepTick(th, time.Millisecond)
	}
	for _, base := range mapped {
		as.Unmap(base)
	}
}

// runDroidListener is the Android-persona pressure consumer: a background
// process holding one cache ballast it frees on the first trim callback —
// the bionic analogue of the iOS balloons' dispatch-source shedding.
func runDroidListener(th *kernel.Thread) {
	th.Kernel().Memorystatus().SetBand(th.Task(), kernel.BandBackground)
	bc := bionic.Sys(th)
	as := th.Task().Mem()
	var ballast uint64
	if r, err := as.Map(0, 32<<10, mem.ProtRead|mem.ProtWrite, "[droid-cache]", false); err == nil {
		r.Backing().Bytes()
		ballast = r.Base
	}
	shed := false
	bc.OnTrimMemory(func(level int) {
		if !shed && ballast != 0 {
			as.Unmap(ballast)
			shed = true
		}
	})
	for i := 0; i < 24; i++ {
		bc.GetPID()
		sleepTick(th, time.Millisecond)
	}
	if !shed && ballast != 0 {
		as.Unmap(ballast)
	}
}

// hogLimit is the RLIMIT_NOFILE soft value the fd hogs lower themselves
// to before exhausting the table.
const hogLimit = 16

// bootCellFDHog starts one descriptor hog per available persona layer.
func bootCellFDHog(sys *core.System) {
	if sys.IOSFS != nil {
		if err := sys.InstallIOSBinary(fdHogIOSPath, "soak-fd-hog-ios", nil, func(c *prog.Call) uint64 {
			runFDHogIOS(c.Ctx.(*kernel.Thread))
			return 0
		}); err == nil {
			sys.Start(fdHogIOSPath, nil)
		}
	}
	if sys.AndroidFS != nil {
		if err := sys.InstallStaticAndroidBinary(fdHogDroidPath, "soak-fd-hog-droid", func(c *prog.Call) uint64 {
			runFDHogDroid(c.Ctx.(*kernel.Thread))
			return 0
		}); err == nil {
			sys.Start(fdHogDroidPath, nil)
		}
	}
}

// runFDHogIOS lowers RLIMIT_NOFILE through the XNU-numbered surface
// (resource 8, translated at the ABI boundary), dups into the wall, and
// releases everything — exercising translation, enforcement, accounting
// and recovery in one deterministic pass.
func runFDHogIOS(th *kernel.Thread) {
	lc := libsystem.Sys(th)
	if _, max, errno := lc.Getrlimit(abi.XNURLimitNoFile); errno == kernel.OK {
		lc.Setrlimit(abi.XNURLimitNoFile, hogLimit, max)
	}
	// cur > max must be rejected in the persona's own numbering.
	lc.Setrlimit(abi.XNURLimitNoFile, 64, 32)
	fd, errno := lc.Creat("/tmp/fd-hog-ios")
	if errno != kernel.OK {
		return
	}
	fds := []int{fd}
	for i := 0; i < hogLimit*2; i++ {
		nfd, derr := lc.Dup(fd)
		if derr != kernel.OK {
			break // EMFILE: the wall, counted as rlimit.hits
		}
		fds = append(fds, nfd)
	}
	for _, f := range fds {
		lc.Close(f)
	}
}

// runFDHogDroid is the Linux-numbered twin (resource 7, no translation).
func runFDHogDroid(th *kernel.Thread) {
	bc := bionic.Sys(th)
	if _, max, errno := bc.Getrlimit(kernel.RLimitNoFile); errno == kernel.OK {
		bc.Setrlimit(kernel.RLimitNoFile, hogLimit, max)
	}
	fd, errno := bc.Creat("/tmp/fd-hog-droid")
	if errno != kernel.OK {
		return
	}
	fds := []int{fd}
	for i := 0; i < hogLimit*2; i++ {
		nfd, derr := bc.Dup(fd)
		if derr != kernel.OK {
			break
		}
		fds = append(fds, nfd)
	}
	for _, f := range fds {
		bc.Close(f)
	}
}
