package soak

import (
	"testing"
)

// TestCleanScheduleLeakFree is the control: the quick battery with no
// faults armed must finish with zero findings — every cell's kernel
// passes LeakCheck after a clean run.
func TestCleanScheduleLeakFree(t *testing.T) {
	s, ok := ScheduleByName("clean")
	if !ok {
		t.Fatal("clean schedule missing from matrix")
	}
	r := RunSchedule(s, Options{Jobs: 1, Tests: QuickTests()})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Injected != 0 {
		t.Fatalf("clean schedule injected %d faults", r.Injected)
	}
}

// TestFaultSchedulesSurvivable runs every schedule in the matrix on the
// quick battery: faults must actually fire (except the control) and no
// schedule may deadlock or leak.
func TestFaultSchedulesSurvivable(t *testing.T) {
	for _, s := range Schedules() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			r := RunSchedule(s, Options{Jobs: 1, Tests: QuickTests()})
			if err := r.Err(); err != nil {
				t.Fatal(err)
			}
			if s.Name != "clean" && r.Injected == 0 {
				t.Fatalf("schedule %q never fired a fault", s.Name)
			}
			t.Logf("%s: digest=%016x cells=%d failed=%d injected=%d",
				r.Schedule, r.Digest, r.Cells, r.FailedCells, r.Injected)
		})
	}
}

// TestDeterminismAcrossJobs is the acceptance criterion: one schedule,
// identical digests at jobs=1 and jobs=4. The digest covers cell
// results, every cell's trace event stream, counters, and injection
// counts, so host scheduling leaking into the simulation shows up here.
func TestDeterminismAcrossJobs(t *testing.T) {
	for _, name := range []string{"eintr-storm", "mach-pressure"} {
		s, ok := ScheduleByName(name)
		if !ok {
			t.Fatalf("schedule %q missing", name)
		}
		if err := VerifyDeterminism(s, 4, Options{Tests: QuickTests()}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRepeatedRunsBitIdentical re-runs one faulted schedule at the same
// jobs level and requires the same digest — no host randomness anywhere
// in the injection or simulation path.
func TestRepeatedRunsBitIdentical(t *testing.T) {
	s, _ := ScheduleByName("errno-storm")
	a := RunSchedule(s, Options{Jobs: 2, Tests: QuickTests()})
	b := RunSchedule(s, Options{Jobs: 2, Tests: QuickTests()})
	if a.Digest != b.Digest {
		t.Fatalf("same schedule, same jobs, different digests: %016x vs %016x", a.Digest, b.Digest)
	}
}
