package soak

import (
	"testing"

	"repro/internal/trace"
)

// TestCleanScheduleLeakFree is the control: the quick battery with no
// faults armed must finish with zero findings — every cell's kernel
// passes LeakCheck after a clean run.
func TestCleanScheduleLeakFree(t *testing.T) {
	s, ok := ScheduleByName("clean")
	if !ok {
		t.Fatal("clean schedule missing from matrix")
	}
	r := RunSchedule(s, Options{Jobs: 1, Tests: QuickTests()})
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Injected != 0 {
		t.Fatalf("clean schedule injected %d faults", r.Injected)
	}
}

// TestFaultSchedulesSurvivable runs every schedule in the matrix on the
// quick battery: faults must actually fire (except the control) and no
// schedule may deadlock or leak.
func TestFaultSchedulesSurvivable(t *testing.T) {
	for _, s := range Schedules() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			r := RunSchedule(s, Options{Jobs: 1, Tests: QuickTests()})
			if err := r.Err(); err != nil {
				t.Fatal(err)
			}
			// Schedules with rules must fire them; rule-free schedules
			// (clean, fd-exhaustion — whose storm is the workload itself)
			// must not inject anything.
			if len(s.Plan.Rules) > 0 && r.Injected == 0 {
				t.Fatalf("schedule %q never fired a fault", s.Name)
			}
			if len(s.Plan.Rules) == 0 && r.Injected != 0 {
				t.Fatalf("rule-free schedule %q injected %d faults", s.Name, r.Injected)
			}
			t.Logf("%s: digest=%016x cells=%d failed=%d injected=%d",
				r.Schedule, r.Digest, r.Cells, r.FailedCells, r.Injected)
		})
	}
}

// TestDeterminismAcrossJobs is the acceptance criterion: one schedule,
// identical digests at jobs=1 and jobs=4. The digest covers cell
// results, every cell's trace event stream, counters, and injection
// counts, so host scheduling leaking into the simulation shows up here.
func TestDeterminismAcrossJobs(t *testing.T) {
	for _, name := range []string{"eintr-storm", "mach-pressure"} {
		s, ok := ScheduleByName(name)
		if !ok {
			t.Fatalf("schedule %q missing", name)
		}
		if err := VerifyDeterminism(s, 4, Options{Tests: QuickTests()}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashSchedulesDeterministic is the crash-storm half of the
// determinism criterion: killing daemons and apps mid-battery — with
// exception delivery, crash reports, SIGCHLD reaping, backoff sleeps and
// respawns in the mix — must still produce bit-identical digests at
// jobs=1 and jobs=4.
func TestCrashSchedulesDeterministic(t *testing.T) {
	for _, name := range []string{"daemon-crash", "app-crash-storm"} {
		s, ok := ScheduleByName(name)
		if !ok {
			t.Fatalf("schedule %q missing", name)
		}
		if err := VerifyDeterminism(s, 4, Options{Tests: QuickTests()}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDaemonCrashKeepsFig5Latencies is the paper-fidelity criterion:
// service daemons crashing and respawning between benchmark operations
// must not perturb the Fig. 5 latency table at all — the latency digest
// under daemon-crash equals the clean schedule's, even though faults
// demonstrably fired, services were respawned, and crash reports were
// written.
func TestDaemonCrashKeepsFig5Latencies(t *testing.T) {
	clean, _ := ScheduleByName("clean")
	dc, ok := ScheduleByName("daemon-crash")
	if !ok {
		t.Fatal("daemon-crash schedule missing")
	}
	a := RunSchedule(clean, Options{Jobs: 1, Tests: QuickTests()})
	b := RunSchedule(dc, Options{Jobs: 1, Tests: QuickTests()})
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if b.Injected == 0 {
		t.Fatal("daemon-crash never fired a fault")
	}
	if a.LatencyDigest != b.LatencyDigest {
		t.Fatalf("daemon crashes perturbed Fig. 5 latencies: clean %016x vs daemon-crash %016x",
			a.LatencyDigest, b.LatencyDigest)
	}
	for _, c := range []string{
		trace.CounterLaunchdCrashes,
		trace.CounterLaunchdRespawns,
		trace.CounterExcRaised,
		trace.CounterCrashReports,
	} {
		if b.Counters[c] == 0 {
			t.Errorf("daemon-crash recorded no %s", c)
		}
	}
	t.Logf("daemon-crash: crashes=%d respawns=%d throttled=%d reports=%d",
		b.Counters[trace.CounterLaunchdCrashes], b.Counters[trace.CounterLaunchdRespawns],
		b.Counters[trace.CounterLaunchdThrottled], b.Counters[trace.CounterCrashReports])
}

// TestGovernanceSchedulesDeterministic is the resource-governance half
// of the determinism criterion: jetsam storms (notify, shed, kill,
// respawn) and descriptor exhaustion must still produce bit-identical
// digests at jobs=1 and jobs=4.
func TestGovernanceSchedulesDeterministic(t *testing.T) {
	for _, name := range []string{"mem-pressure-storm", "fd-exhaustion"} {
		s, ok := ScheduleByName(name)
		if !ok {
			t.Fatalf("schedule %q missing", name)
		}
		if err := VerifyDeterminism(s, 4, Options{Tests: QuickTests()}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPressureStormSparesForeground is the governance counterpart of the
// daemon-crash fidelity test: a memory-pressure storm that demonstrably
// notifies, kills, and triggers jetsam respawns must (a) never reap a
// foreground- or background-band task — kills land idle-first, exactly
// jetsam's point — (b) have launchd account every reaped daemon as a
// jetsam rather than a crash, and (c) leave the Fig. 5 latency digest
// bit-identical to the clean schedule's.
func TestPressureStormSparesForeground(t *testing.T) {
	clean, _ := ScheduleByName("clean")
	ps, ok := ScheduleByName("mem-pressure-storm")
	if !ok {
		t.Fatal("mem-pressure-storm schedule missing")
	}
	a := RunSchedule(clean, Options{Jobs: 1, Tests: QuickTests()})
	b := RunSchedule(ps, Options{Jobs: 1, Tests: QuickTests()})
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if b.Injected == 0 {
		t.Fatal("mem-pressure-storm never fired a fault")
	}
	if a.LatencyDigest != b.LatencyDigest {
		t.Fatalf("pressure storm perturbed Fig. 5 latencies: clean %016x vs storm %016x",
			a.LatencyDigest, b.LatencyDigest)
	}
	kills := b.Counters[trace.CounterJetsamKills]
	if kills == 0 {
		t.Fatal("pressure storm reaped nobody")
	}
	if b.Counters[trace.CounterPressureNotify] == 0 {
		t.Error("pressure storm delivered no notifications")
	}
	for _, band := range []string{"foreground", "background"} {
		if n := b.Counters[trace.CounterJetsamKills+"."+band]; n != 0 {
			t.Errorf("jetsam reaped %d %s-band task(s); kills must land idle-first", n, band)
		}
	}
	if got := b.Counters[trace.CounterJetsamKills+".idle"] +
		b.Counters[trace.CounterJetsamKills+".daemon"]; got != kills {
		t.Errorf("per-band kill counts (%d) do not account for all %d kills", got, kills)
	}
	if b.Counters[trace.CounterLaunchdJetsam] == 0 {
		t.Error("launchd accounted no reaped daemon as a jetsam")
	}
	if b.Counters[trace.CounterLaunchdThrottled] != 0 {
		t.Error("jetsam respawns charged the crash-loop throttle")
	}
	t.Logf("mem-pressure-storm: kills=%d (idle=%d daemon=%d) notify=%d launchd.jetsam=%d",
		kills, b.Counters[trace.CounterJetsamKills+".idle"],
		b.Counters[trace.CounterJetsamKills+".daemon"],
		b.Counters[trace.CounterPressureNotify], b.Counters[trace.CounterLaunchdJetsam])
}

// TestRepeatedRunsBitIdentical re-runs one faulted schedule at the same
// jobs level and requires the same digest — no host randomness anywhere
// in the injection or simulation path.
func TestRepeatedRunsBitIdentical(t *testing.T) {
	s, _ := ScheduleByName("errno-storm")
	a := RunSchedule(s, Options{Jobs: 2, Tests: QuickTests()})
	b := RunSchedule(s, Options{Jobs: 2, Tests: QuickTests()})
	if a.Digest != b.Digest {
		t.Fatalf("same schedule, same jobs, different digests: %016x vs %016x", a.Digest, b.Digest)
	}
}
