package soak

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/ducttape"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/lmbench"
	"repro/internal/passmark"
	"repro/internal/prog"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/xnu"
)

// CellRefs enumerates a schedule's cells in canonical order: the
// lmbench cells (configurations in paper order, tests in battery order
// within each), the per-configuration passmark cells when full, then
// the Mach IPC cell. Every soak digest, report and artifact indexes
// cells in this order, which is what lets a single cell re-execute in
// isolation: each cell is an independent System, so cell i's digest is
// the same whether its siblings ran or not.
func CellRefs(tests []lmbench.Test, full bool) []replay.CellRef {
	if tests == nil {
		tests = lmbench.AllTests()
	}
	var refs []replay.CellRef
	for _, c := range lmbench.Cells(tests) {
		refs = append(refs, replay.CellRef{Bench: "lmbench", Config: c.Config.Name, Test: c.Test.Name})
	}
	if full {
		for _, conf := range passmark.Configurations() {
			refs = append(refs, replay.CellRef{Bench: "passmark", Config: conf.Name})
		}
	}
	refs = append(refs, replay.CellRef{Bench: "mach"})
	return refs
}

// CellReport is one cell's replay-facing outcome summary.
type CellReport struct {
	// Ref identifies the cell.
	Ref replay.CellRef
	// Digest fingerprints everything deterministic about the cell run:
	// benchmark results, injection counts, and the trace stream.
	Digest uint64
	// DecisionCount is how many scheduler decision points the run
	// consulted (0 when recording was off).
	DecisionCount uint64
	// Findings are the cell's invariant violations (empty = passed).
	Findings []string
	// Failed counts benchmark measurements that did not complete.
	Failed int
	// Injected counts fault-rule fires.
	Injected uint64
}

// cellOutcome is everything one cell contributes to a schedule Result.
type cellOutcome struct {
	ref      replay.CellRef
	digest   uint64
	failed   int
	injected uint64
	counters map[string]uint64
	findings []string
	// latPart fingerprints the cell's Fig. 5 latency contribution
	// (lmbench cells only; latPresent gates it).
	latPart    uint64
	latPresent bool
	// choices/decCount are the recorded scheduler decisions (recording
	// runs only).
	choices  []replay.Choice
	decCount uint64
}

func (o *cellOutcome) report() *CellReport {
	return &CellReport{
		Ref: o.ref, Digest: o.digest, DecisionCount: o.decCount,
		Findings: o.findings, Failed: o.failed, Injected: o.injected,
	}
}

// runCellRef executes one cell in isolation. dec, when non-nil, is
// installed as the cell System's scheduler Decider (recording, replay,
// or exploration); the caller owns reading any recording back out.
func runCellRef(s Schedule, ref replay.CellRef, dec sim.Decider) cellOutcome {
	switch ref.Bench {
	case "lmbench":
		return runLmbenchCell(s, ref, dec)
	case "passmark":
		return runPassmarkCell(s, ref, dec)
	case "mach":
		return runMachCell(s, dec)
	}
	return cellOutcome{ref: ref, findings: []string{fmt.Sprintf("unknown cell bench %q", ref.Bench)}}
}

// outcomeFromRecorder copies a recording into the outcome.
func (o *cellOutcome) fromRecorder(rec *replay.Recorder) {
	if rec == nil {
		return
	}
	o.choices = rec.Choices()
	o.decCount = rec.Count()
}

// auditSystem folds one booted System's post-run state into the
// outcome: injection counts, the trace stream, supervision accounting,
// and the kernel leak check.
func (o *cellOutcome) auditSystem(d *digest, s Schedule, sys *core.System) {
	if sys.Fault != nil {
		o.injected += sys.Fault.Fired()
		d.u64(sys.Fault.Fired())
	}
	digestSession(d, sys.Trace)
	o.collectCounters(sys.Trace)
	if crashes, respawns, throttled := supervisionCounters(sys.Trace); crashes > respawns+throttled+1 {
		o.findings = append(o.findings, fmt.Sprintf(
			"cell %s: supervision lost services: %d crashes vs %d respawns + %d throttled",
			o.ref, crashes, respawns, throttled))
	}
	if s.Pressure && sys.Kernel != nil {
		// The foreground-survival invariant: however hard the storm blows,
		// jetsam must exhaust the idle, daemon and background bands before
		// it ever touches a foreground task — and the pressure schedules
		// never push that far, so a foreground kill is a victim-ordering
		// bug, not load shedding.
		total, perBand := sys.Kernel.Memorystatus().Kills()
		if perBand[kernel.BandForeground] != 0 {
			o.findings = append(o.findings, fmt.Sprintf(
				"cell %s: foreground-survival violated: %d foreground kill(s) of %d total",
				o.ref, perBand[kernel.BandForeground], total))
		}
	}
	if err := sys.Kernel.LeakCheck(); err != nil {
		o.findings = append(o.findings, fmt.Sprintf("cell %s: %v", o.ref, err))
	}
}

func (o *cellOutcome) collectCounters(tr *trace.Session) {
	if tr == nil {
		return
	}
	if o.counters == nil {
		o.counters = map[string]uint64{}
	}
	for _, c := range tr.Counters() {
		o.counters[c.Name] += c.Value
	}
}

func lmbenchConfByName(name string) (lmbench.Configuration, bool) {
	for _, c := range lmbench.Configurations() {
		if c.Name == name {
			return c, true
		}
	}
	return lmbench.Configuration{}, false
}

func lmbenchTestByName(name string) (lmbench.Test, bool) {
	for _, t := range lmbench.AllTests() {
		if t.Name == name {
			return t, true
		}
	}
	return lmbench.Test{}, false
}

func runLmbenchCell(s Schedule, ref replay.CellRef, dec sim.Decider) cellOutcome {
	o := cellOutcome{ref: ref, latPresent: true}
	d := newDigest()
	d.str("lmbench")
	d.str(ref.Config)
	d.str(ref.Test)
	ld := newDigest()
	ld.str(ref.Test)

	conf, okC := lmbenchConfByName(ref.Config)
	test, okT := lmbenchTestByName(ref.Test)
	if !okC || !okT {
		o.findings = append(o.findings, fmt.Sprintf("cell %s: unknown lmbench config/test", ref))
		o.digest, o.latPart = d.sum(), ld.sum()
		return o
	}
	var sys *core.System
	rs, err := lmbench.RunWith(conf, []lmbench.Test{test}, func(y *core.System) {
		y.EnableTrace()
		y.EnableFaults(s.Plan)
		if s.Services {
			bootCellServices(y)
		}
		if s.Pressure {
			bootCellPressure(y)
		}
		if s.FDHog {
			bootCellFDHog(y)
		}
		if dec != nil {
			y.Sim.SetDecider(dec)
		}
		sys = y
	})
	if err != nil {
		d.str("err:" + err.Error())
		ld.str("err:" + err.Error())
		var dl *sim.ErrDeadlock
		if errors.As(err, &dl) {
			o.findings = append(o.findings, fmt.Sprintf("cell %s deadlocked under %q: %v", ref, s.Name, dl.Report()))
		}
	} else {
		for _, r := range rs {
			d.u64(uint64(r.Latency))
			ld.u64(uint64(r.Latency))
			if r.Failed {
				d.u64(1)
				ld.u64(1)
				o.failed++
			} else {
				d.u64(0)
				ld.u64(0)
			}
		}
	}
	if sys != nil {
		o.auditSystem(d, s, sys)
	}
	o.digest, o.latPart = d.sum(), ld.sum()
	return o
}

func runPassmarkCell(s Schedule, ref replay.CellRef, dec sim.Decider) cellOutcome {
	o := cellOutcome{ref: ref}
	d := newDigest()
	d.str("passmark")
	d.str(ref.Config)

	var conf passmark.Configuration
	found := false
	for _, c := range passmark.Configurations() {
		if c.Name == ref.Config {
			conf, found = c, true
			break
		}
	}
	if !found {
		o.findings = append(o.findings, fmt.Sprintf("cell %s: unknown passmark config", ref))
		o.digest = d.sum()
		return o
	}
	var sys *core.System
	rs, err := passmark.RunWith(conf, passmark.AllTests(), func(y *core.System) {
		y.EnableTrace()
		y.EnableFaults(s.Plan)
		if dec != nil {
			y.Sim.SetDecider(dec)
		}
		sys = y
	})
	if err != nil {
		d.str("err:" + err.Error())
		var dl *sim.ErrDeadlock
		if errors.As(err, &dl) {
			o.findings = append(o.findings, fmt.Sprintf("cell %s deadlocked under %q: %v", ref, s.Name, dl.Report()))
		}
	} else {
		for _, r := range rs {
			d.str(r.Test)
			d.u64(uint64(int64(r.Score * 1e6)))
			if r.Err != nil {
				d.u64(1)
				o.failed++
			} else {
				d.u64(0)
			}
		}
	}
	if sys != nil {
		o.auditSystem(d, s, sys)
	}
	o.digest = d.sum()
	return o
}

// runMachCell drives a purpose-built Mach IPC workload under the
// schedule. The Fig. 5/6 batteries never call mach_msg (iOS benchmark
// syscalls ride the BSD half of the XNU table), so the soak matrix
// exercises the duct-taped subsystem directly: cross-task messaging
// under queue pressure, interrupted sends/receives with bounded retry,
// dead-name notifications, and task-exit teardown of a space still
// holding live receive rights.
func runMachCell(s Schedule, dec sim.Decider) (o cellOutcome) {
	o = cellOutcome{ref: replay.CellRef{Bench: "mach"}}
	d := newDigest()
	d.str("mach-cell")
	// Named result: the deferred digest capture must land in the value
	// the caller sees, on every return path below.
	defer func() { o.digest = d.sum() }()

	sm := sim.New()
	k, err := kernel.New(sm, kernel.Config{
		Profile: kernel.ProfileCider, Device: hw.Nexus7(),
		Root: vfs.New(), Registry: prog.NewRegistry(),
	})
	if err != nil {
		o.findings = append(o.findings, fmt.Sprintf("mach cell: boot: %v", err))
		return o
	}
	k.InstallLinuxTable()
	k.RegisterBinFmt(&kernel.ELFLoader{})
	ipc, err := xnu.InstallIPC(k, ducttape.NewEnv(k))
	if err != nil {
		o.findings = append(o.findings, fmt.Sprintf("mach cell: ipc: %v", err))
		return o
	}
	tr := trace.NewSession("mach-cell")
	sm.SetSink(tr)
	k.SetTracer(tr)
	if dec != nil {
		sm.SetDecider(dec)
	}
	in := fault.NewInjector(s.Plan)
	in.OnInject = func(op fault.Op, key string, out fault.Outcome, now time.Duration) {
		proc, id := "", 0
		if cur := sm.Current(); cur != nil {
			proc, id = cur.Name(), cur.ID()
		}
		tr.Fault(proc, id, op.String(), key, out.Errno, now)
	}
	k.EnableFaults(in)

	const msgs = 48
	const tick = 100 * time.Microsecond
	var sent, received, retries, gaveUp uint64
	var notified bool
	serverReady := false
	ready := sim.NewWaitQueue("soak-ready")

	spawn := func(key string, body func(*kernel.Thread)) error {
		k.Registry().MustRegister(key, func(c *prog.Call) uint64 {
			body(c.Ctx.(*kernel.Thread))
			return 0
		})
		bin, berr := prog.StaticELF(key)
		if berr != nil {
			return berr
		}
		if werr := k.Root().(*vfs.FS).WriteFile("/bin/"+key, bin); werr != nil {
			return werr
		}
		_, serr := k.StartProcess("/bin/"+key, nil)
		return serr
	}

	err = spawn("soak-mach-server", func(th *kernel.Thread) {
		port, kr := ipc.PortAllocate(th)
		if kr != xnu.KernSuccess {
			return
		}
		cr, _ := ipc.MakeSendRight(th, port)
		ipc.SetBootstrapPort(cr.Port)
		serverReady = true
		ready.WakeAll(th.Proc(), sim.WakeNormal)
		// Bounded receive loop: injected interrupts and timeouts retry,
		// but the loop always terminates even if the client gives up.
		for attempts := 0; received < msgs && attempts < msgs*8; attempts++ {
			msg, rkr := ipc.Receive(th, port, 2*tick)
			if rkr == xnu.KernSuccess {
				received++
				_ = msg
			} else {
				retries++
				th.Charge(tick / 4)
			}
		}
		// Exit without destroying the port: task-exit teardown must reap
		// the receive right and fail any still-blocked sender.
	})
	if err == nil {
		err = spawn("soak-mach-client", func(th *kernel.Thread) {
			for !serverReady {
				// An injected interrupt just re-checks the flag and
				// re-parks; the loop condition is the real gate.
				if ready.Wait(th.Proc()) == sim.WakeInterrupted {
					continue
				}
			}
			for i := 0; i < msgs; i++ {
				ok := false
				for attempts := 0; attempts < 8; attempts++ {
					kr := ipc.Send(th, xnu.BootstrapName,
						&xnu.Message{ID: int32(i), Body: []byte("soak")}, 2*tick)
					if kr == xnu.KernSuccess {
						ok = true
						break
					}
					retries++
					th.Charge(tick / 4)
				}
				if ok {
					sent++
				} else {
					gaveUp++
				}
			}
		})
	}
	if err == nil {
		err = spawn("soak-mach-notify", func(th *kernel.Thread) {
			watched, kr := ipc.PortAllocate(th)
			if kr != xnu.KernSuccess {
				return
			}
			notify, kr := ipc.PortAllocate(th)
			if kr != xnu.KernSuccess {
				return
			}
			if kr = ipc.RequestDeadNameNotification(th, watched, notify); kr != xnu.KernSuccess {
				return
			}
			ipc.PortDestroy(th, watched)
			for attempts := 0; attempts < 8; attempts++ {
				msg, rkr := ipc.Receive(th, notify, 2*tick)
				if rkr == xnu.KernSuccess && msg.ID == xnu.MsgDeadNameNotification {
					notified = true
					break
				}
				th.Charge(tick / 4)
			}
		})
	}
	if err != nil {
		o.findings = append(o.findings, fmt.Sprintf("mach cell: spawn: %v", err))
		return o
	}
	if rerr := sm.Run(); rerr != nil {
		d.str("mach-err:" + rerr.Error())
		var dl *sim.ErrDeadlock
		if errors.As(rerr, &dl) {
			o.findings = append(o.findings, fmt.Sprintf("mach cell deadlocked under %q: %v", s.Name, dl.Report()))
		}
		return o
	}
	if s.Name == "clean" {
		// Without faults the workload must complete perfectly; under
		// injection partial completion is the point.
		if sent != msgs || received != msgs || !notified {
			o.findings = append(o.findings, fmt.Sprintf(
				"mach cell: clean run incomplete: sent=%d received=%d notified=%v", sent, received, notified))
		}
	}
	d.u64(sent)
	d.u64(received)
	d.u64(retries)
	d.u64(gaveUp)
	if notified {
		d.u64(1)
	} else {
		d.u64(0)
	}
	fired := in.Fired()
	o.injected += fired
	d.u64(fired)
	digestSession(d, tr)
	o.collectCounters(tr)
	if lerr := k.LeakCheck(); lerr != nil {
		o.findings = append(o.findings, fmt.Sprintf("mach cell (%s): %v", s.Name, lerr))
	}
	return o
}

// artifactForOutcome packages a cell outcome as a replay artifact.
func artifactForOutcome(s Schedule, o *cellOutcome, exploreSeed uint64) *replay.Artifact {
	ref := o.ref
	plan := s.Plan
	a := &replay.Artifact{
		Version:       replay.ArtifactVersion,
		Kind:          replay.KindSoak,
		Schedule:      s.Name,
		Plan:          &plan,
		Services:      s.Services,
		Pressure:      s.Pressure,
		FDHog:         s.FDHog,
		Cell:          &ref,
		ExploreSeed:   exploreSeed,
		Decisions:     o.choices,
		DecisionCount: o.decCount,
	}
	a.SetDigest(o.digest)
	if len(o.findings) > 0 {
		a.Note = o.findings[0]
	}
	return a
}

// artifactPath builds a deterministic, filesystem-safe artifact path.
func artifactPath(dir, schedule string, ref replay.CellRef, exploreSeed uint64) string {
	if dir == "" {
		dir = os.TempDir()
	}
	name := "cider-replay-" + sanitize(schedule) + "-" + sanitize(ref.String())
	if exploreSeed != 0 {
		name += fmt.Sprintf("-x%d", exploreSeed)
	}
	return filepath.Join(dir, name+".json")
}

// sanitize maps a cell label to [a-z0-9-]: lmbench test names carry
// '+', '(', ')' and '/'.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	dash := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			out = append(out, c)
			dash = false
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
			dash = false
		default:
			if !dash && len(out) > 0 {
				out = append(out, '-')
				dash = true
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '-' {
		out = out[:len(out)-1]
	}
	return string(out)
}

// RecordCell runs one cell under a Recorder (wrapping inner, which may
// be nil for the canonical schedule or an Explorer for a perturbed one)
// and returns the replay artifact plus the cell report.
func RecordCell(s Schedule, ref replay.CellRef, inner sim.Decider, exploreSeed uint64) (*replay.Artifact, *CellReport) {
	rec := replay.NewRecorder(inner)
	o := runCellRef(s, ref, rec)
	o.fromRecorder(rec)
	return artifactForOutcome(s, &o, exploreSeed), o.report()
}

// ReplayCell re-executes a soak artifact's cell in isolation under its
// recorded decision log and reports the outcome; the caller compares
// CellReport.Digest against the artifact's recorded digest.
func ReplayCell(a *replay.Artifact) (*CellReport, error) {
	if a.Kind != replay.KindSoak {
		return nil, fmt.Errorf("soak: artifact kind %q is not %q", a.Kind, replay.KindSoak)
	}
	if a.Cell == nil || a.Plan == nil {
		return nil, fmt.Errorf("soak: artifact missing cell or plan")
	}
	s := Schedule{Name: a.Schedule, Plan: *a.Plan, Services: a.Services, Pressure: a.Pressure, FDHog: a.FDHog}
	rec := replay.NewRecorder(replay.NewReplayer(a.Decisions))
	o := runCellRef(s, *a.Cell, rec)
	o.fromRecorder(rec)
	return o.report(), nil
}
