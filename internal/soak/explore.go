package soak

import (
	"fmt"
	"strings"

	"repro/internal/replay"
	"repro/internal/runner"
)

// ExploreResult summarizes a schedule-exploration run.
type ExploreResult struct {
	// Schedule names the plan that was explored.
	Schedule string
	// Rounds is how many perturbation seeds ran.
	Rounds int
	// CellRuns is the total number of explored cell executions.
	CellRuns int
	// Decisions is the total number of scheduler decision points
	// consulted across all explored runs.
	Decisions uint64
	// Perturbed is the total number of non-canonical choices taken.
	Perturbed uint64
	// Findings are the invariant violations explored schedules hit,
	// each followed by its minimized replay artifact line.
	Findings []string
	// Artifacts lists the minimized artifact files written, one per
	// failing cell run.
	Artifacts []string
	// Digest fingerprints the full exploration (per-round, per-cell
	// digests): the explorer-determinism criterion is equal digests for
	// equal (schedule, seeds, rounds).
	Digest uint64
}

// Err folds findings into an error (nil when exploration ran clean).
func (r *ExploreResult) Err() error {
	if len(r.Findings) == 0 {
		return nil
	}
	return fmt.Errorf("soak: explore %s: %d finding(s):\n  %s", r.Schedule, len(r.Findings), joinIndent(r.Findings))
}

// MinimizeBudget is the per-failure trial budget for schedule
// minimization (each trial re-executes one cell).
const MinimizeBudget = 96

// Explore runs the schedule's cells under `rounds` seeded perturbations
// of the scheduler's ambiguous decisions (DPOR-lite: every
// equal-virtual-time pick, wake order, and equal-clock preemption tie
// is re-decided pseudo-randomly per round). A correct kernel and
// workload must hold every soak invariant — no deadlocks, no leaks, no
// lost services, and on the clean schedule full completion — under
// every such schedule; any violation is minimized via delta-debug over
// the decision log and written out as a replay artifact.
//
// Exploration is deterministic: round r uses explore seed r, and the
// explorer's choices are a pure function of (seed, decision order), so
// the same (schedule, rounds) input reproduces the same schedule set,
// findings, and digest on every host.
func Explore(s Schedule, opts Options, rounds int) *ExploreResult {
	res := &ExploreResult{Schedule: s.Name, Rounds: rounds}
	refs := CellRefs(opts.Tests, opts.Full)
	d := newDigest()
	d.str(s.Name)
	d.u64(s.Plan.Seed)
	for round := 1; round <= rounds; round++ {
		seed := uint64(round)
		outcomes, _ := runner.Map(len(refs), opts.Jobs, func(i int) (cellOutcome, error) {
			rec := replay.NewRecorder(&replay.Explorer{Seed: seed})
			o := runCellRef(s, refs[i], rec)
			o.fromRecorder(rec)
			return o, nil
		})
		d.u64(seed)
		for i := range outcomes {
			o := &outcomes[i]
			res.CellRuns++
			res.Decisions += o.decCount
			res.Perturbed += uint64(len(o.choices))
			d.u64(uint64(i))
			d.u64(o.digest)
			d.u64(uint64(len(o.choices)))
			if len(o.findings) == 0 {
				continue
			}
			res.Findings = append(res.Findings, o.findings...)
			min := minimizeOutcome(s, o)
			a := artifactForOutcome(s, min, seed)
			path := artifactPath(opts.ArtifactDir, s.Name, min.ref, seed)
			if werr := a.WriteFile(path); werr != nil {
				res.Findings = append(res.Findings, fmt.Sprintf("cell %s: artifact write failed: %v", min.ref, werr))
				continue
			}
			res.Findings = append(res.Findings, fmt.Sprintf(
				"cell %s (explore seed %d, %d/%d non-canonical choices after minimization): reproduce with: cider replay %s",
				min.ref, seed, len(min.choices), len(o.choices), path))
			res.Artifacts = append(res.Artifacts, path)
		}
	}
	res.Digest = d.sum()
	return res
}

// minimizeOutcome delta-debugs a failing explored cell's choice log
// down to a shorter one that still reproduces the failure class, then
// re-runs the cell under the minimized log so the artifact's digest,
// decision count and note describe the minimized schedule.
func minimizeOutcome(s Schedule, o *cellOutcome) *cellOutcome {
	class := findingClass(o.findings)
	min := replay.MinimizeChoices(o.choices, MinimizeBudget, func(trial []replay.Choice) bool {
		t := runCellRef(s, o.ref, replay.NewReplayer(trial))
		return findingClass(t.findings) == class
	})
	rec := replay.NewRecorder(replay.NewReplayer(min))
	out := runCellRef(s, o.ref, rec)
	out.fromRecorder(rec)
	if findingClass(out.findings) != class {
		// Minimization must end on a reproducing log (it only ever keeps
		// reproducing trials), so this is defensive: fall back to the
		// original recording.
		return o
	}
	return &out
}

// findingClass buckets findings into coarse failure classes so
// minimization tracks "same bug" rather than exact message equality
// (messages embed counts and clocks that legitimately shift as the
// schedule shrinks).
func findingClass(findings []string) string {
	for _, f := range findings {
		switch {
		case strings.Contains(f, "deadlock"):
			return "deadlock"
		case strings.Contains(f, "leak"):
			return "leak"
		case strings.Contains(f, "supervision lost"):
			return "supervision"
		case strings.Contains(f, "incomplete"):
			return "incomplete"
		}
	}
	if len(findings) > 0 {
		return "other"
	}
	return ""
}
