package soak

import (
	"path/filepath"
	"testing"

	"repro/internal/replay"
)

// TestRecordReplayBitIdentical is the tentpole criterion: for every
// schedule in the soak matrix, every quick-battery cell records to an
// artifact that — after a full encode/decode round trip through the
// file format — replays to the exact same digest, decision count, and
// findings in isolation.
func TestRecordReplayBitIdentical(t *testing.T) {
	dir := t.TempDir()
	for _, s := range Schedules() {
		refs := CellRefs(QuickTests(), false)
		for i, ref := range refs {
			a, rec := RecordCell(s, ref, nil, 0)
			path := filepath.Join(dir, sanitize(s.Name+"-"+ref.String())+".json")
			if err := a.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			b, err := replay.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := ReplayCell(b)
			if err != nil {
				t.Fatalf("%s cell %s: %v", s.Name, ref, err)
			}
			if rep.Digest != rec.Digest {
				t.Errorf("%s cell %d %s: replayed digest %016x, recorded %016x",
					s.Name, i, ref, rep.Digest, rec.Digest)
			}
			if rep.DecisionCount != rec.DecisionCount {
				t.Errorf("%s cell %s: replayed %d decisions, recorded %d",
					s.Name, ref, rep.DecisionCount, rec.DecisionCount)
			}
			if len(rep.Findings) != len(rec.Findings) {
				t.Errorf("%s cell %s: replayed findings %v, recorded %v",
					s.Name, ref, rep.Findings, rec.Findings)
			}
		}
	}
}

// TestRecordingDoesNotChangeDigest pins the canonical-equivalence
// property recording-by-default rests on: a recorded run and an
// unrecorded run of the same schedule produce identical digests. The
// decision-heavy daemon-crash schedule is the interesting case; clean
// is the control.
func TestRecordingDoesNotChangeDigest(t *testing.T) {
	for _, name := range []string{"clean", "daemon-crash"} {
		s, ok := ScheduleByName(name)
		if !ok {
			t.Fatalf("schedule %s missing", name)
		}
		opts := Options{Tests: QuickTests()}
		recorded := RunSchedule(s, opts)
		opts.NoRecord = true
		bare := RunSchedule(s, opts)
		if recorded.Digest != bare.Digest {
			t.Errorf("%s: recorded digest %016x != unrecorded %016x",
				name, recorded.Digest, bare.Digest)
		}
		if recorded.LatencyDigest != bare.LatencyDigest {
			t.Errorf("%s: recorded latency digest %016x != unrecorded %016x",
				name, recorded.LatencyDigest, bare.LatencyDigest)
		}
	}
}

// TestExploreDeterministic pins the explorer-determinism criterion:
// the same (schedule, rounds) exploration yields the same digest,
// decision totals, and findings on every run — and at any jobs level.
func TestExploreDeterministic(t *testing.T) {
	s, _ := ScheduleByName("daemon-crash")
	opts := Options{Tests: QuickTests(), ArtifactDir: t.TempDir()}
	a := Explore(s, opts, 2)
	b := Explore(s, opts, 2)
	opts.Jobs = 4
	c := Explore(s, opts, 2)
	for _, r := range []*ExploreResult{b, c} {
		if r.Digest != a.Digest {
			t.Errorf("explore digest diverged: %016x vs %016x", r.Digest, a.Digest)
		}
		if r.Decisions != a.Decisions || r.Perturbed != a.Perturbed || r.CellRuns != a.CellRuns {
			t.Errorf("explore totals diverged: %+v vs %+v", r, a)
		}
		if len(r.Findings) != len(a.Findings) {
			t.Errorf("explore findings diverged: %v vs %v", r.Findings, a.Findings)
		}
	}
	if a.Decisions == 0 || a.Perturbed == 0 {
		t.Errorf("explorer consulted %d decisions, perturbed %d — not exploring",
			a.Decisions, a.Perturbed)
	}
}

// TestExploredRunReplaysBitIdentical closes the loop on perturbed
// schedules: a cell recorded under an Explorer replays bit-identically
// from its artifact, non-canonical choices and all.
func TestExploredRunReplaysBitIdentical(t *testing.T) {
	s, _ := ScheduleByName("daemon-crash")
	ref := replay.CellRef{Bench: "mach"}
	a, rec := RecordCell(s, ref, &replay.Explorer{Seed: 5}, 5)
	if len(a.Decisions) == 0 {
		t.Fatal("explored mach cell took no non-canonical choices; perturbation is dead")
	}
	data, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := replay.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayCell(b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Digest != rec.Digest {
		t.Fatalf("explored replay digest %016x, recorded %016x", rep.Digest, rec.Digest)
	}
}

// TestCheckedInArtifactReplays replays the perturbed-schedule fixture
// checked into testdata: the daemon-crash mach cell under explore seed
// 5, a schedule with ~50 non-canonical wake/next/preempt choices the
// canonical run never takes. The soak invariants (no deadlock, no
// leak, supervision intact) must keep holding on this schedule as the
// kernel evolves — if this test starts reporting findings, an ordering
// bug regressed, and the fixture is its one-command reproducer. The
// digest is deliberately NOT asserted: it legitimately shifts with
// behavior changes; the invariants may not.
func TestCheckedInArtifactReplays(t *testing.T) {
	a, err := replay.Load("testdata/explored-daemon-crash-mach-x5.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Decisions) == 0 {
		t.Fatal("fixture has no non-canonical choices; it no longer perturbs anything")
	}
	rep, err := ReplayCell(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) > 0 {
		t.Fatalf("perturbed schedule regressed:\n%s", rep.Findings)
	}
	if rep.DecisionCount == 0 {
		t.Fatal("replay consulted no decisions; recording is dead")
	}
}

// TestReplayCellValidation pins artifact validation.
func TestReplayCellValidation(t *testing.T) {
	if _, err := ReplayCell(&replay.Artifact{Version: replay.ArtifactVersion, Kind: replay.KindDiffcheck}); err == nil {
		t.Error("diffcheck artifact accepted by soak replay")
	}
	if _, err := ReplayCell(&replay.Artifact{Version: replay.ArtifactVersion, Kind: replay.KindSoak}); err == nil {
		t.Error("artifact without cell/plan accepted")
	}
}
