package soak

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/prog"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/xnu"
)

// svcClientPath is the in-cell Mach service client the crash schedules
// run alongside the benchmark: a supervision-aware app whose requests
// must keep succeeding (with bounded retries) while the daemons it talks
// to are being killed and respawned under it.
const svcClientPath = "/bin/soak-svc-client"

// svcClientRounds is how many config/notify/syslog rounds the client
// drives per cell — enough traffic to make every crash rule's Nth hit
// reachable on the quick battery.
const svcClientRounds = 40

// bootCellServices boots the launchd service tree in one battery cell and
// starts the service client app next to the benchmark process. Cells
// without an iOS layer (vanilla Android) have no services and are left
// alone. Failures are deliberately tolerated: a cell that cannot boot
// services still runs its benchmark, and the divergence shows up in the
// digest rather than as a host error.
func bootCellServices(sys *core.System) {
	if sys.IOSFS == nil {
		return
	}
	if _, err := sys.BootServices(); err != nil {
		return
	}
	if err := sys.InstallIOSBinary(svcClientPath, "soak-svc-client", nil, func(c *prog.Call) uint64 {
		runSvcClient(c.Ctx.(*kernel.Thread))
		return 0
	}); err != nil {
		return
	}
	if _, err := sys.Start(svcClientPath, nil); err != nil {
		return
	}
}

// runSvcClient is the client body: deterministic rounds of configd set/
// get, notifyd posts and syslog lines through ServiceClient, which hides
// daemon crashes behind dead-name detection, bootstrap re-resolution and
// bounded backoff. Request errors are tolerated — under a crash storm a
// round may exhaust its retry budget — but every outcome is deterministic
// and lands in the cell's trace digest.
func runSvcClient(th *kernel.Thread) {
	lc := libsystem.Sys(th)
	// Let launchd's children come through their startup syscalls so the
	// schedules' early Nth hits land in service loops, not mid-register.
	sleepTick(th, 5*time.Millisecond)
	cfg := services.NewServiceClient(lc, services.ConfigdName)
	nfy := services.NewServiceClient(lc, services.NotifydName)
	slg := services.NewServiceClient(lc, services.SyslogdName)
	for i := 0; i < svcClientRounds; i++ {
		if i%2 == 0 {
			cfg.Send(&xnu.Message{ID: services.MsgConfigSet,
				Body: []byte(fmt.Sprintf("soak.tick=%d", i))})
		} else {
			cfg.Call(&xnu.Message{ID: services.MsgConfigGet, Body: []byte("soak.tick")})
		}
		nfy.Send(&xnu.Message{ID: services.MsgNotifyPost, Body: []byte("soak.notification")})
		slg.Send(&xnu.Message{ID: services.MsgSyslog,
			Body: []byte(fmt.Sprintf("soak-svc-client: round %d", i))})
		sleepTick(th, time.Millisecond)
	}
}

// sleepTick sleeps d of virtual time, re-sleeping the remainder when an
// injected interrupt cuts the sleep short.
func sleepTick(th *kernel.Thread, d time.Duration) {
	deadline := th.Now() + d
	for th.Now() < deadline {
		if th.Proc().Sleep(deadline-th.Now()) == sim.WakeInterrupted {
			continue
		}
	}
}
