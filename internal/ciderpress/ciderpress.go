// Package ciderpress implements CiderPress, the proxy service of
// Section 3: "a standard Android app that integrates launch and execution
// of an iOS app with Android's Launcher and system services. It is
// directly started by Android's Launcher, receives input such as touch
// events and accelerometer data from the Android input subsystem, and its
// life cycle is managed like any other Android app. CiderPress launches
// the foreign binary, and proxies its own display memory, incoming input
// events, and app state changes to the iOS app."
package ciderpress

import (
	"fmt"

	"repro/internal/bionic"
	"repro/internal/graphics"
	"repro/internal/hw"
	"repro/internal/input"
	"repro/internal/kernel"
	"repro/internal/prog"
)

// ProgKey is the CiderPress program's registry key.
const ProgKey = "ciderpress"

// BinaryPath is where the CiderPress APK's native binary lives.
const BinaryPath = "/system/app/CiderPress"

// EventFDArg is the argv convention telling the iOS app which descriptor
// carries its event socket.
const EventFDArg = "-ciderpress-eventfd"

// Service holds the system objects CiderPress needs.
type Service struct {
	// InputDev is the Android input device it reads.
	InputDev *input.Device
	// SF is SurfaceFlinger, for the proxy display surface.
	SF *graphics.SurfaceFlinger
	// Display is the panel, for surface sizing.
	Display *hw.DisplayModel

	// proxy is the Android-side surface whose memory is proxied to the
	// foreign app (and whose contents back the recents screenshot).
	proxy *graphics.Surface
	// lastStatus is the foreign app's exit status.
	lastStatus int
	launches   int
}

// Launches reports how many foreign apps this service has started.
func (s *Service) Launches() int { return s.launches }

// LastStatus returns the most recent foreign app's exit status.
func (s *Service) LastStatus() int { return s.lastStatus }

// Screenshot returns the proxy surface contents — what Android's recent
// activity list shows for the iOS app.
func (s *Service) Screenshot() []byte {
	if s.proxy == nil {
		return nil
	}
	return append([]byte(nil), s.proxy.Buf.Backing.Bytes()...)
}

// Register installs the CiderPress program. Its argv is the iOS app's
// executable path (the Launcher shortcut's payload).
func Register(reg *prog.Registry, svc *Service) error {
	return reg.Register(ProgKey, func(c *prog.Call) uint64 {
		t := c.Ctx.(*kernel.Thread)
		return svc.run(t)
	})
}

// run is the CiderPress main.
func (s *Service) run(t *kernel.Thread) uint64 {
	lc := bionic.Sys(t)
	argv := t.Task().Argv()
	if len(argv) < 1 {
		return 2
	}
	appPath := argv[0]

	// Allocate the proxy display surface; screen shots of the iOS app
	// appear in Android's recent activity list through it.
	proxy, err := s.SF.CreateSurface(t, "ciderpress:"+appPath, s.Display.Width, s.Display.Height)
	if err != nil {
		return 2
	}
	s.proxy = proxy
	defer s.SF.DestroySurface(t, proxy)

	// The event channel to the foreign app's eventpump: a connected
	// AF_UNIX pair; the child inherits the far end across fork+exec.
	localFD, childFD, errno := lc.Socketpair()
	if errno != kernel.OK {
		return 2
	}

	// Launch the foreign binary. This is an Android (Linux) binary
	// fork+exec'ing an iOS binary — exactly the fork+exec(ios) path the
	// microbenchmarks measure.
	pid := lc.Fork(func(cc *bionic.C) {
		cc.Close(localFD)
		cc.Exec(appPath, []string{EventFDArg, fmt.Sprint(childFD)})
		cc.Exit(127)
	})
	if pid < 0 {
		return 2
	}
	lc.Close(childFD)
	s.launches++

	// Forward input events from the Android input subsystem to the app,
	// watching both the input device and the app socket: if the foreign
	// app exits, its socket end closes and the forwarding stops — the
	// proxy's life cycle tracks the app's, like any Android activity.
	inFD, errno := lc.Open("/dev/input0")
	if errno != kernel.OK {
		return 2
	}
	buf := make([]byte, 16*input.EventSize)
	var pending []byte
forward:
	for {
		res, errno := lc.Select(&kernel.SelectRequest{
			ReadFDs: []int{inFD, localFD}, Timeout: -1,
		})
		if errno != kernel.OK {
			break
		}
		for _, fd := range res.ReadReady {
			if fd == localFD {
				// Readable app socket means EOF here (the app never
				// writes): the foreign binary exited.
				if n, _ := lc.Read(localFD, buf); n == 0 {
					break forward
				}
				continue
			}
			n, errno := lc.Read(inFD, buf)
			if errno != kernel.OK || n == 0 {
				break forward
			}
			if _, werrno := lc.Write(localFD, buf[:n]); werrno != kernel.OK {
				break forward
			}
			pending = append(pending, buf[:n]...)
			for len(pending) >= input.EventSize {
				e, err := input.Unmarshal(pending[:input.EventSize])
				pending = pending[input.EventSize:]
				if err == nil && e.Type == input.Lifecycle && e.Code == input.LifecycleStop {
					break forward
				}
			}
		}
	}
	lc.Close(inFD)
	lc.Close(localFD)

	// The app lifecycle follows Android's: reap the foreign process.
	_, status, _ := lc.Wait(pid)
	s.lastStatus = status
	return uint64(status)
}

// InstallBinary writes the CiderPress executable into the Android image.
func InstallBinary(fs interface {
	WriteFile(string, []byte) error
}) error {
	bin, err := prog.DynamicELF(ProgKey, []string{"libc.so", "libutils.so", "libgui.so"})
	if err != nil {
		return err
	}
	return fs.WriteFile(BinaryPath, bin)
}
