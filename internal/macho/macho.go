// Package macho implements the Mach-O binary format used by iOS apps and
// dylibs: byte-level encoding and decoding of the header, load commands
// (segments, symbol table, dylib references, dylinker, entry point,
// encryption info), exactly as Cider's kernel Mach-O loader and dyld
// consume them (Sections 2 and 4.1 of the paper).
//
// The encoding follows the real 32-bit little-endian ARM Mach-O layout
// (mach_header, load_command, segment_command, nlist, ...) from Apple's
// "OS X ABI Mach-O File Format Reference". iOS apps in the paper's era were
// armv7 binaries. Program text is carried as opaque section bytes; the
// execution layer binds the __text payload to registered program code by
// symbol, the way dyld binds symbols to implementations.
package macho

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
)

// Magic32 is the 32-bit little-endian Mach-O magic (MH_MAGIC).
const Magic32 = 0xfeedface

// CPU types (mach/machine.h).
const (
	// CPUTypeARM is CPU_TYPE_ARM.
	CPUTypeARM = 12
	// CPUSubtypeARMV7 is CPU_SUBTYPE_ARM_V7.
	CPUSubtypeARMV7 = 9
)

// File types (mach-o/loader.h).
const (
	// TypeExecute is MH_EXECUTE, a demand-paged executable.
	TypeExecute = 2
	// TypeDylib is MH_DYLIB, a dynamically bound shared library.
	TypeDylib = 6
)

// Header flags.
const (
	// FlagNoUndefs is MH_NOUNDEFS.
	FlagNoUndefs = 0x1
	// FlagDyldLink is MH_DYLDLINK.
	FlagDyldLink = 0x4
	// FlagPIE is MH_PIE.
	FlagPIE = 0x200000
)

// Load command types (mach-o/loader.h).
const (
	// LCSegment is LC_SEGMENT (32-bit segment).
	LCSegment = 0x1
	// LCSymtab is LC_SYMTAB.
	LCSymtab = 0x2
	// LCUnixThread is LC_UNIXTHREAD (pre-LC_MAIN entry point).
	LCUnixThread = 0x5
	// LCLoadDylib is LC_LOAD_DYLIB.
	LCLoadDylib = 0xc
	// LCIDDylib is LC_ID_DYLIB.
	LCIDDylib = 0xd
	// LCLoadDylinker is LC_LOAD_DYLINKER.
	LCLoadDylinker = 0xe
	// LCEncryptionInfo is LC_ENCRYPTION_INFO (FairPlay app encryption).
	LCEncryptionInfo = 0x21
	// LCMain is LC_MAIN (entry point offset), 0x28 | LC_REQ_DYLD.
	LCMain = 0x80000028
)

// VM protections (mach/vm_prot.h).
const (
	// ProtRead is VM_PROT_READ.
	ProtRead = 0x1
	// ProtWrite is VM_PROT_WRITE.
	ProtWrite = 0x2
	// ProtExecute is VM_PROT_EXECUTE.
	ProtExecute = 0x4
)

// Symbol type bits (mach-o/nlist.h).
const (
	// NTypeExt marks an external (exported or undefined-imported) symbol.
	NTypeExt = 0x01
	// NTypeSect marks a symbol defined in a section.
	NTypeSect = 0x0e
	// NTypeUndef marks an undefined symbol (to be bound by dyld).
	NTypeUndef = 0x00
)

// Section is a named range within a segment.
type Section struct {
	// Name is the section name (e.g. "__text"), at most 16 bytes.
	Name string
	// Addr is the section's virtual address.
	Addr uint32
	// Size is the section length.
	Size uint32
	// Offset is the section's position in the file.
	Offset uint32
}

// Segment is a loadable virtual memory range.
type Segment struct {
	// Name is the segment name ("__TEXT", "__DATA", "__LINKEDIT"), at most
	// 16 bytes.
	Name string
	// VMAddr is the load address.
	VMAddr uint32
	// VMSize is the in-memory size (>= len(Data), zero-filled).
	VMSize uint32
	// Prot is the initial VM protection.
	Prot uint32
	// Data is the file contents of the segment.
	Data []byte
	// Sections subdivide the segment.
	Sections []Section
}

// Symbol is one nlist entry.
type Symbol struct {
	// Name is the symbol string (with leading underscore, Mach-O style).
	Name string
	// Type is the n_type byte.
	Type uint8
	// Sect is the 1-based section ordinal (0 = NO_SECT).
	Sect uint8
	// Value is the symbol address (n_value).
	Value uint32
}

// Exported reports whether the symbol is an external definition.
func (s Symbol) Exported() bool {
	return s.Type&NTypeExt != 0 && s.Type&NTypeSect != 0
}

// Undefined reports whether the symbol must be bound by dyld.
func (s Symbol) Undefined() bool {
	return s.Type&NTypeExt != 0 && s.Type&NTypeSect == 0
}

// EncryptionInfo mirrors LC_ENCRYPTION_INFO: App Store binaries ship with
// their __TEXT pages FairPlay-encrypted (CryptID != 0) and must be
// decrypted with device keys before they can run anywhere else
// (Section 6.1).
type EncryptionInfo struct {
	// CryptOff is the file offset of the encrypted range.
	CryptOff uint32
	// CryptSize is the length of the encrypted range.
	CryptSize uint32
	// CryptID is the encryption system (0 = not encrypted).
	CryptID uint32
}

// File is a parsed or under-construction Mach-O image.
type File struct {
	// CPUType and CPUSubtype identify the architecture.
	CPUType    uint32
	CPUSubtype uint32
	// FileType is TypeExecute or TypeDylib.
	FileType uint32
	// Flags are the mach_header flags.
	Flags uint32
	// Segments are the loadable segments in file order.
	Segments []*Segment
	// Symbols is the symbol table.
	Symbols []Symbol
	// Dylibs are the LC_LOAD_DYLIB install names, in load order.
	Dylibs []string
	// DylibID is the LC_ID_DYLIB install name (dylibs only).
	DylibID string
	// Dylinker is the LC_LOAD_DYLINKER path (executables; "/usr/lib/dyld").
	Dylinker string
	// EntryOffset is the LC_MAIN entry point file offset (executables).
	EntryOffset uint32
	// HasEntry records whether an LC_MAIN command is present.
	HasEntry bool
	// Encryption is the LC_ENCRYPTION_INFO payload, if present.
	Encryption *EncryptionInfo
}

// Segment returns the named segment, or nil.
func (f *File) Segment(name string) *Segment {
	for _, s := range f.Segments {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Lookup returns the symbol with the given name.
func (f *File) Lookup(name string) (Symbol, bool) {
	for _, s := range f.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// ExportedSymbols returns all external definitions, in table order.
func (f *File) ExportedSymbols() []Symbol {
	var out []Symbol
	for _, s := range f.Symbols {
		if s.Exported() {
			out = append(out, s)
		}
	}
	return out
}

// UndefinedSymbols returns all dyld-bound imports, in table order.
func (f *File) UndefinedSymbols() []Symbol {
	var out []Symbol
	for _, s := range f.Symbols {
		if s.Undefined() {
			out = append(out, s)
		}
	}
	return out
}

// Encrypted reports whether the image carries FairPlay-encrypted text.
func (f *File) Encrypted() bool {
	return f.Encryption != nil && f.Encryption.CryptID != 0
}

const (
	headerSize     = 28 // sizeof(struct mach_header)
	segCmdSize     = 56 // sizeof(struct segment_command)
	sectSize       = 68 // sizeof(struct section)
	symtabCmdSize  = 24 // sizeof(struct symtab_command)
	dylibCmdSize   = 24 // sizeof(struct dylib_command) before the name
	nlistSize      = 12 // sizeof(struct nlist)
	encInfoCmdSize = 20 // sizeof(struct encryption_info_command)
	mainCmdSize    = 24 // sizeof(struct entry_point_command)
)

var le = binary.LittleEndian

func pad16(s string) ([]byte, error) {
	if len(s) > 16 {
		return nil, fmt.Errorf("macho: name %q exceeds 16 bytes", s)
	}
	b := make([]byte, 16)
	copy(b, s)
	return b, nil
}

func unpad16(b []byte) string {
	i := bytes.IndexByte(b, 0)
	if i < 0 {
		i = len(b)
	}
	return string(b[:i])
}

// align4 rounds n up to a multiple of 4 (load command sizes must be).
func align4(n int) int { return (n + 3) &^ 3 }

// Marshal encodes the file into Mach-O bytes. Segment file offsets and the
// symbol table layout are computed here; Section.Offset values are set
// relative to the final layout.
func (f *File) Marshal() ([]byte, error) {
	// First pass: compute load command sizes.
	cmdsSize := 0
	for _, seg := range f.Segments {
		cmdsSize += segCmdSize + sectSize*len(seg.Sections)
	}
	if len(f.Symbols) > 0 {
		cmdsSize += symtabCmdSize
	}
	for _, d := range f.Dylibs {
		cmdsSize += dylibCmdSize + align4(len(d)+1)
	}
	if f.DylibID != "" {
		cmdsSize += dylibCmdSize + align4(len(f.DylibID)+1)
	}
	if f.Dylinker != "" {
		cmdsSize += 12 + align4(len(f.Dylinker)+1)
	}
	if f.Encryption != nil {
		cmdsSize += encInfoCmdSize
	}
	if f.HasEntry {
		cmdsSize += mainCmdSize
	}
	ncmds := len(f.Segments) + len(f.Dylibs)
	if len(f.Symbols) > 0 {
		ncmds++
	}
	if f.DylibID != "" {
		ncmds++
	}
	if f.Dylinker != "" {
		ncmds++
	}
	if f.Encryption != nil {
		ncmds++
	}
	if f.HasEntry {
		ncmds++
	}

	// Layout: header, load commands, segment data (in order), symtab,
	// string table.
	dataStart := headerSize + cmdsSize
	segOffsets := make([]int, len(f.Segments))
	off := dataStart
	for i, seg := range f.Segments {
		segOffsets[i] = off
		off += len(seg.Data)
	}
	symOff := off
	strOff := symOff + nlistSize*len(f.Symbols)

	// String table: index 0 is a NUL so n_strx==0 means "no name".
	var strtab bytes.Buffer
	strtab.WriteByte(0)
	strx := make([]uint32, len(f.Symbols))
	for i, s := range f.Symbols {
		strx[i] = uint32(strtab.Len())
		strtab.WriteString(s.Name)
		strtab.WriteByte(0)
	}

	var buf bytes.Buffer
	w := func(v any) { binary.Write(&buf, le, v) }

	// mach_header.
	w(uint32(Magic32))
	w(f.CPUType)
	w(f.CPUSubtype)
	w(f.FileType)
	w(uint32(ncmds))
	w(uint32(cmdsSize))
	w(f.Flags)

	// Load commands.
	for i, seg := range f.Segments {
		name, err := pad16(seg.Name)
		if err != nil {
			return nil, err
		}
		w(uint32(LCSegment))
		w(uint32(segCmdSize + sectSize*len(seg.Sections)))
		buf.Write(name)
		w(seg.VMAddr)
		vmsize := seg.VMSize
		if vmsize < uint32(len(seg.Data)) {
			vmsize = uint32(len(seg.Data))
		}
		w(vmsize)
		w(uint32(segOffsets[i])) // fileoff
		w(uint32(len(seg.Data))) // filesize
		w(seg.Prot)              // maxprot
		w(seg.Prot)              // initprot
		w(uint32(len(seg.Sections)))
		w(uint32(0)) // flags
		for _, sec := range seg.Sections {
			sn, err := pad16(sec.Name)
			if err != nil {
				return nil, err
			}
			gn, _ := pad16(seg.Name)
			buf.Write(sn)
			buf.Write(gn)
			w(sec.Addr)
			w(sec.Size)
			w(uint32(segOffsets[i]) + sec.Offset)
			w(uint32(0)) // align
			w(uint32(0)) // reloff
			w(uint32(0)) // nreloc
			w(uint32(0)) // flags
			w(uint32(0)) // reserved1
			w(uint32(0)) // reserved2
		}
	}
	if len(f.Symbols) > 0 {
		w(uint32(LCSymtab))
		w(uint32(symtabCmdSize))
		w(uint32(symOff))
		w(uint32(len(f.Symbols)))
		w(uint32(strOff))
		w(uint32(strtab.Len()))
	}
	writeDylib := func(cmd uint32, name string) {
		sz := dylibCmdSize + align4(len(name)+1)
		w(cmd)
		w(uint32(sz))
		w(uint32(dylibCmdSize)) // name offset within command
		w(uint32(0))            // timestamp
		w(uint32(0x10000))      // current_version 1.0.0
		w(uint32(0x10000))      // compatibility_version
		nb := make([]byte, align4(len(name)+1))
		copy(nb, name)
		buf.Write(nb)
	}
	if f.DylibID != "" {
		writeDylib(LCIDDylib, f.DylibID)
	}
	for _, d := range f.Dylibs {
		writeDylib(LCLoadDylib, d)
	}
	if f.Dylinker != "" {
		sz := 12 + align4(len(f.Dylinker)+1)
		w(uint32(LCLoadDylinker))
		w(uint32(sz))
		w(uint32(12))
		nb := make([]byte, align4(len(f.Dylinker)+1))
		copy(nb, f.Dylinker)
		buf.Write(nb)
	}
	if f.Encryption != nil {
		// A zero CryptOff/CryptSize means "cover the __TEXT segment":
		// Marshal fills in the final file layout, the way the App Store
		// encryption pipeline wraps a submitted binary.
		off, size := f.Encryption.CryptOff, f.Encryption.CryptSize
		if off == 0 && size == 0 {
			for i, seg := range f.Segments {
				if seg.Name == "__TEXT" {
					off = uint32(segOffsets[i])
					size = uint32(len(seg.Data))
				}
			}
		}
		w(uint32(LCEncryptionInfo))
		w(uint32(encInfoCmdSize))
		w(off)
		w(size)
		w(f.Encryption.CryptID)
	}
	if f.HasEntry {
		w(uint32(LCMain))
		w(uint32(mainCmdSize))
		w(uint64(f.EntryOffset)) // entryoff
		w(uint64(0))             // stacksize
	}

	if buf.Len() != dataStart {
		return nil, fmt.Errorf("macho: layout bug: header+cmds = %d, want %d", buf.Len(), dataStart)
	}

	// Segment data.
	for _, seg := range f.Segments {
		buf.Write(seg.Data)
	}
	// Symbol table.
	for i, s := range f.Symbols {
		w(strx[i])
		w(s.Type)
		w(s.Sect)
		w(uint16(0)) // n_desc
		w(s.Value)
	}
	buf.Write(strtab.Bytes())
	return buf.Bytes(), nil
}

// ErrBadMagic reports a non-Mach-O image (the binfmt loader uses it to fall
// through to the next loader, as binfmt handlers do in Linux).
type ErrBadMagic struct{ Got uint32 }

func (e *ErrBadMagic) Error() string {
	return fmt.Sprintf("macho: bad magic 0x%08x (want 0x%08x)", e.Got, uint32(Magic32))
}

// Parse decodes a Mach-O image.
func Parse(b []byte) (*File, error) {
	if len(b) < headerSize {
		return nil, &ErrBadMagic{}
	}
	if le.Uint32(b[0:]) != Magic32 {
		return nil, &ErrBadMagic{Got: le.Uint32(b[0:])}
	}
	f := &File{
		CPUType:    le.Uint32(b[4:]),
		CPUSubtype: le.Uint32(b[8:]),
		FileType:   le.Uint32(b[12:]),
		Flags:      le.Uint32(b[24:]),
	}
	ncmds := int(le.Uint32(b[16:]))
	cmdsSize := int(le.Uint32(b[20:]))
	if headerSize+cmdsSize > len(b) {
		return nil, fmt.Errorf("macho: truncated load commands")
	}
	off := headerSize
	var symtabOff, nsyms, strOff, strSize int
	for i := 0; i < ncmds; i++ {
		if off+8 > len(b) {
			return nil, fmt.Errorf("macho: truncated command %d", i)
		}
		cmd := le.Uint32(b[off:])
		sz := int(le.Uint32(b[off+4:]))
		if sz < 8 || off+sz > len(b) {
			return nil, fmt.Errorf("macho: bad command size %d at %d", sz, off)
		}
		body := b[off : off+sz]
		switch cmd {
		case LCSegment:
			if sz < segCmdSize {
				return nil, fmt.Errorf("macho: short segment command")
			}
			seg := &Segment{
				Name:   unpad16(body[8:24]),
				VMAddr: le.Uint32(body[24:]),
				VMSize: le.Uint32(body[28:]),
				Prot:   le.Uint32(body[44:]), // initprot
			}
			fileoff := int(le.Uint32(body[32:]))
			filesize := int(le.Uint32(body[36:]))
			if fileoff+filesize > len(b) {
				return nil, fmt.Errorf("macho: segment %q data out of range", seg.Name)
			}
			// Full-capacity subslice, not a copy: parsing is read-only, and
			// every consumer (loaders, dyld, the exec path) copies segment
			// bytes into its own backing before mutating. Aliasing the input
			// makes Parse allocation-free in the data dimension, which
			// matters because boot parses ~90MB of dylib images.
			seg.Data = b[fileoff : fileoff+filesize : fileoff+filesize]
			nsects := int(le.Uint32(body[48:]))
			so := segCmdSize
			for s := 0; s < nsects; s++ {
				if so+sectSize > sz {
					return nil, fmt.Errorf("macho: truncated sections in %q", seg.Name)
				}
				sec := Section{
					Name:   unpad16(body[so : so+16]),
					Addr:   le.Uint32(body[so+32:]),
					Size:   le.Uint32(body[so+36:]),
					Offset: le.Uint32(body[so+40:]) - uint32(fileoff),
				}
				seg.Sections = append(seg.Sections, sec)
				so += sectSize
			}
			f.Segments = append(f.Segments, seg)
		case LCSymtab:
			symtabOff = int(le.Uint32(body[8:]))
			nsyms = int(le.Uint32(body[12:]))
			strOff = int(le.Uint32(body[16:]))
			strSize = int(le.Uint32(body[20:]))
		case LCLoadDylib, LCIDDylib:
			nameOff := int(le.Uint32(body[8:]))
			if nameOff >= sz {
				return nil, fmt.Errorf("macho: bad dylib name offset")
			}
			name := cstr(body[nameOff:])
			if cmd == LCLoadDylib {
				f.Dylibs = append(f.Dylibs, name)
			} else {
				f.DylibID = name
			}
		case LCLoadDylinker:
			nameOff := int(le.Uint32(body[8:]))
			if nameOff >= sz {
				return nil, fmt.Errorf("macho: bad dylinker name offset")
			}
			f.Dylinker = cstr(body[nameOff:])
		case LCEncryptionInfo:
			f.Encryption = &EncryptionInfo{
				CryptOff:  le.Uint32(body[8:]),
				CryptSize: le.Uint32(body[12:]),
				CryptID:   le.Uint32(body[16:]),
			}
		case LCMain:
			f.EntryOffset = uint32(le.Uint64(body[8:]))
			f.HasEntry = true
		}
		off += sz
	}
	if nsyms > 0 {
		if symtabOff+nsyms*nlistSize > len(b) || strOff+strSize > len(b) {
			return nil, fmt.Errorf("macho: symbol table out of range")
		}
		strtab := b[strOff : strOff+strSize]
		for i := 0; i < nsyms; i++ {
			e := b[symtabOff+i*nlistSize:]
			strx := int(le.Uint32(e[0:]))
			name := ""
			if strx > 0 && strx < len(strtab) {
				name = cstr(strtab[strx:])
			}
			f.Symbols = append(f.Symbols, Symbol{
				Name:  name,
				Type:  e[4],
				Sect:  e[5],
				Value: le.Uint32(e[8:]),
			})
		}
	}
	return f, nil
}

// Sniff reports whether b starts with a Mach-O header, and that header's
// filetype, without decoding any load commands. Binary-format detection
// (Recognize in the loaders) runs on every exec; it only needs these eight
// header bytes, not a full parse.
func Sniff(b []byte) (filetype uint32, ok bool) {
	if len(b) < headerSize || le.Uint32(b[0:]) != Magic32 {
		return 0, false
	}
	return le.Uint32(b[12:]), true
}

// sharedFiles caches ParseShared results keyed by the identity of the input
// buffer's backing array. Keying on the *byte pins that array alive for the
// life of the entry, so a key can never be recycled for different bytes.
// The population is bounded by the number of distinct binaries in the
// process — dominated by the template dylib images every booted System now
// shares (see internal/core's filesystem templates).
var sharedFiles sync.Map // *byte -> *sharedEntry

type sharedEntry struct {
	n int
	f *File
}

// ParseShared is Parse for callers that re-decode the same immutable image
// over and over (dyld loads the same 100+ dylibs for every exec of every
// booted System). It returns one cached *File per distinct input buffer;
// the caller must treat the result — and the buffer — as immutable.
// Rewriting a file in the simulated VFS installs a fresh data slice
// (vfs.SetData), which misses the cache and re-parses, so stale hits would
// require mutating a binary's bytes in place through Data(), which the VFS
// contract already forbids.
func ParseShared(b []byte) (*File, error) {
	if len(b) == 0 {
		return Parse(b)
	}
	key := &b[0]
	if v, ok := sharedFiles.Load(key); ok {
		if e := v.(*sharedEntry); e.n == len(b) {
			return e.f, nil
		}
		// Same backing array, different length (a resliced prefix):
		// rare enough to just parse unshared.
		return Parse(b)
	}
	f, err := Parse(b)
	if err != nil {
		return nil, err
	}
	sharedFiles.Store(key, &sharedEntry{n: len(b), f: f})
	return f, nil
}

func cstr(b []byte) string {
	i := bytes.IndexByte(b, 0)
	if i < 0 {
		return string(b)
	}
	return string(b[:i])
}
