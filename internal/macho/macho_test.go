package macho

import (
	"bytes"
	"testing"
	"testing/quick"
)

// sampleExe builds a representative iOS app binary.
func sampleExe() *File {
	return &File{
		CPUType:    CPUTypeARM,
		CPUSubtype: CPUSubtypeARMV7,
		FileType:   TypeExecute,
		Flags:      FlagNoUndefs | FlagDyldLink | FlagPIE,
		Segments: []*Segment{
			{
				Name:   "__TEXT",
				VMAddr: 0x1000,
				Prot:   ProtRead | ProtExecute,
				Data:   []byte("prog:com.example.app\x00"),
				Sections: []Section{
					{Name: "__text", Addr: 0x1000, Size: 21, Offset: 0},
				},
			},
			{
				Name:   "__DATA",
				VMAddr: 0x8000,
				VMSize: 0x4000,
				Prot:   ProtRead | ProtWrite,
				Data:   []byte{1, 2, 3, 4},
			},
		},
		Symbols: []Symbol{
			{Name: "_main", Type: NTypeSect | NTypeExt, Sect: 1, Value: 0x1000},
			{Name: "_helper", Type: NTypeSect, Sect: 1, Value: 0x1010},
			{Name: "_IOSurfaceCreate", Type: NTypeUndef | NTypeExt},
		},
		Dylibs:      []string{"/usr/lib/libSystem.B.dylib", "/System/Library/Frameworks/UIKit.framework/UIKit"},
		Dylinker:    "/usr/lib/dyld",
		EntryOffset: 28,
		HasEntry:    true,
	}
}

func TestRoundTripExecutable(t *testing.T) {
	f := sampleExe()
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.CPUType != CPUTypeARM || g.CPUSubtype != CPUSubtypeARMV7 {
		t.Fatalf("cpu = %d/%d", g.CPUType, g.CPUSubtype)
	}
	if g.FileType != TypeExecute {
		t.Fatalf("filetype = %d", g.FileType)
	}
	if g.Flags != f.Flags {
		t.Fatalf("flags = %#x, want %#x", g.Flags, f.Flags)
	}
	if len(g.Segments) != 2 {
		t.Fatalf("segments = %d", len(g.Segments))
	}
	text := g.Segment("__TEXT")
	if text == nil || !bytes.Equal(text.Data, []byte("prog:com.example.app\x00")) {
		t.Fatalf("__TEXT data = %q", text.Data)
	}
	if text.Prot != ProtRead|ProtExecute {
		t.Fatalf("__TEXT prot = %d", text.Prot)
	}
	data := g.Segment("__DATA")
	if data.VMSize != 0x4000 {
		t.Fatalf("__DATA vmsize = %#x (zero-fill lost)", data.VMSize)
	}
	if len(g.Dylibs) != 2 || g.Dylibs[0] != "/usr/lib/libSystem.B.dylib" {
		t.Fatalf("dylibs = %v", g.Dylibs)
	}
	if g.Dylinker != "/usr/lib/dyld" {
		t.Fatalf("dylinker = %q", g.Dylinker)
	}
	if !g.HasEntry || g.EntryOffset != 28 {
		t.Fatalf("entry = %v %d", g.HasEntry, g.EntryOffset)
	}
	if len(g.Segments[0].Sections) != 1 || g.Segments[0].Sections[0].Name != "__text" {
		t.Fatalf("sections = %+v", g.Segments[0].Sections)
	}
}

func TestRoundTripSymbols(t *testing.T) {
	f := sampleExe()
	b, _ := f.Marshal()
	g, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Symbols) != 3 {
		t.Fatalf("symbols = %d", len(g.Symbols))
	}
	m, ok := g.Lookup("_main")
	if !ok || !m.Exported() || m.Value != 0x1000 {
		t.Fatalf("_main = %+v ok=%v", m, ok)
	}
	h, _ := g.Lookup("_helper")
	if h.Exported() {
		t.Fatal("_helper is local, must not be exported")
	}
	u, _ := g.Lookup("_IOSurfaceCreate")
	if !u.Undefined() {
		t.Fatal("_IOSurfaceCreate must be undefined (dyld-bound)")
	}
	if len(g.ExportedSymbols()) != 1 {
		t.Fatalf("exported = %v", g.ExportedSymbols())
	}
	if len(g.UndefinedSymbols()) != 1 {
		t.Fatalf("undefined = %v", g.UndefinedSymbols())
	}
}

func TestDylibIDRoundTrip(t *testing.T) {
	f := &File{
		CPUType:  CPUTypeARM,
		FileType: TypeDylib,
		DylibID:  "/usr/lib/libEGLbridge.dylib",
		Segments: []*Segment{{Name: "__TEXT", Prot: ProtRead | ProtExecute, Data: []byte("x")}},
		Symbols:  []Symbol{{Name: "_eagl_present", Type: NTypeSect | NTypeExt, Sect: 1}},
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.DylibID != f.DylibID {
		t.Fatalf("id = %q", g.DylibID)
	}
	if g.FileType != TypeDylib {
		t.Fatalf("filetype = %d", g.FileType)
	}
}

func TestEncryptionInfo(t *testing.T) {
	f := sampleExe()
	f.Encryption = &EncryptionInfo{CryptOff: 4096, CryptSize: 8192, CryptID: 1}
	b, _ := f.Marshal()
	g, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Encrypted() {
		t.Fatal("should be encrypted")
	}
	if g.Encryption.CryptOff != 4096 || g.Encryption.CryptSize != 8192 {
		t.Fatalf("enc = %+v", g.Encryption)
	}
	g.Encryption.CryptID = 0
	if g.Encrypted() {
		t.Fatal("CryptID=0 must mean decrypted")
	}
}

func TestBadMagic(t *testing.T) {
	_, err := Parse([]byte("\x7fELF this is not macho at all......"))
	if _, ok := err.(*ErrBadMagic); !ok {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	_, err = Parse(nil)
	if _, ok := err.(*ErrBadMagic); !ok {
		t.Fatalf("nil: err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedFile(t *testing.T) {
	f := sampleExe()
	b, _ := f.Marshal()
	for _, cut := range []int{headerSize + 4, headerSize + 40, len(b) / 2} {
		if cut >= len(b) {
			continue
		}
		if _, err := Parse(b[:cut]); err == nil {
			t.Errorf("parse of %d/%d bytes should fail", cut, len(b))
		}
	}
}

func TestNameTooLong(t *testing.T) {
	f := &File{Segments: []*Segment{{Name: "__THIS_NAME_IS_WAY_TOO_LONG", Data: []byte("x")}}}
	if _, err := f.Marshal(); err == nil {
		t.Fatal("oversized segment name should fail to marshal")
	}
}

func TestMagicConstant(t *testing.T) {
	f := sampleExe()
	b, _ := f.Marshal()
	if le.Uint32(b) != 0xfeedface {
		t.Fatalf("magic = %#x, want 0xfeedface", le.Uint32(b))
	}
}

func TestPropertyRoundTripSymbolNames(t *testing.T) {
	check := func(names []string) bool {
		f := &File{CPUType: CPUTypeARM, FileType: TypeDylib, DylibID: "/l.dylib",
			Segments: []*Segment{{Name: "__TEXT", Data: []byte("k")}}}
		for _, n := range names {
			if len(n) == 0 || bytes.IndexByte([]byte(n), 0) >= 0 {
				return true // skip invalid symbol names
			}
			f.Symbols = append(f.Symbols, Symbol{Name: n, Type: NTypeSect | NTypeExt, Sect: 1})
		}
		b, err := f.Marshal()
		if err != nil {
			return false
		}
		g, err := Parse(b)
		if err != nil || len(g.Symbols) != len(f.Symbols) {
			return false
		}
		for i := range names {
			if g.Symbols[i].Name != f.Symbols[i].Name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySegmentDataPreserved(t *testing.T) {
	check := func(data []byte, vmExtra uint16) bool {
		f := &File{Segments: []*Segment{{
			Name: "__DATA", Data: data, VMSize: uint32(len(data)) + uint32(vmExtra),
		}}}
		b, err := f.Marshal()
		if err != nil {
			return false
		}
		g, err := Parse(b)
		if err != nil {
			return false
		}
		return bytes.Equal(g.Segments[0].Data, data) &&
			g.Segments[0].VMSize == uint32(len(data))+uint32(vmExtra)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
