package macho

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: arbitrary bytes must produce an error or a value,
// never a panic — the loader consumes untrusted app-store data.
func TestParseNeverPanics(t *testing.T) {
	check := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %d bytes: %v", len(data), r)
				ok = false
			}
		}()
		Parse(data)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseNeverPanicsWithMagic: same, but force the magic so the parser
// walks the load-command machinery on garbage.
func TestParseNeverPanicsWithMagic(t *testing.T) {
	check := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		b := make([]byte, len(data)+28)
		binary.LittleEndian.PutUint32(b, Magic32)
		copy(b[4:], data)
		Parse(b)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseCorruptedValid mutates a valid image byte-by-byte at a sample
// of offsets; parsing must never panic and must either fail or produce a
// structurally-consistent file.
func TestParseCorruptedValid(t *testing.T) {
	f := sampleExe()
	good, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(good); off += 3 {
		for _, val := range []byte{0x00, 0xFF, 0x80} {
			mut := append([]byte(nil), good...)
			mut[off] = val
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic at offset %d value %#x: %v", off, val, r)
					}
				}()
				Parse(mut)
			}()
		}
	}
}
