package elfx

import (
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: the ELF loader consumes untrusted bytes.
func TestParseNeverPanics(t *testing.T) {
	check := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		Parse(data)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseCorruptedValid mutates a valid shared object at every third
// offset; Parse must never panic.
func TestParseCorruptedValid(t *testing.T) {
	good, err := sampleSO().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(good); off += 3 {
		for _, val := range []byte{0x00, 0xFF, 0x80} {
			mut := append([]byte(nil), good...)
			mut[off] = val
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic at offset %d value %#x: %v", off, val, r)
					}
				}()
				Parse(mut)
			}()
		}
	}
}
