package elfx

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleSO() *File {
	return &File{
		Type:   TypeDyn,
		SoName: "libGLESv2.so",
		Needed: []string{"libc.so", "libEGL.so"},
		Segments: []*Segment{
			{VAddr: 0x1000, Flags: FlagR | FlagX, Data: []byte("prog:libGLESv2\x00")},
			{VAddr: 0x8000, Flags: FlagR | FlagW, Data: []byte{9, 9}, MemSize: 0x2000},
		},
		Symbols: []Symbol{
			{Name: "glDrawArrays", Value: 0x1010, Defined: true},
			{Name: "glClear", Value: 0x1020, Defined: true},
			{Name: "ioctl", Defined: false},
		},
	}
}

func TestRoundTripSharedObject(t *testing.T) {
	f := sampleSO()
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != TypeDyn {
		t.Fatalf("type = %d", g.Type)
	}
	if g.SoName != "libGLESv2.so" {
		t.Fatalf("soname = %q", g.SoName)
	}
	if len(g.Needed) != 2 || g.Needed[0] != "libc.so" || g.Needed[1] != "libEGL.so" {
		t.Fatalf("needed = %v", g.Needed)
	}
	if len(g.Segments) != 2 {
		t.Fatalf("segments = %d", len(g.Segments))
	}
	if !bytes.Equal(g.Segments[0].Data, []byte("prog:libGLESv2\x00")) {
		t.Fatalf("text = %q", g.Segments[0].Data)
	}
	if g.Segments[1].MemSize != 0x2000 {
		t.Fatalf("memsize = %#x", g.Segments[1].MemSize)
	}
	if g.Segments[0].Flags != FlagR|FlagX {
		t.Fatalf("flags = %d", g.Segments[0].Flags)
	}
}

func TestRoundTripSymbols(t *testing.T) {
	b, _ := sampleSO().Marshal()
	g, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Symbols) != 3 {
		t.Fatalf("symbols = %d", len(g.Symbols))
	}
	s, ok := g.Lookup("glDrawArrays")
	if !ok || !s.Defined || s.Value != 0x1010 {
		t.Fatalf("glDrawArrays = %+v, ok=%v", s, ok)
	}
	u, _ := g.Lookup("ioctl")
	if u.Defined {
		t.Fatal("ioctl should be undefined")
	}
	if len(g.ExportedSymbols()) != 2 {
		t.Fatalf("exports = %v", g.ExportedSymbols())
	}
}

func TestExecutable(t *testing.T) {
	f := &File{
		Type:  TypeExec,
		Entry: 0x1000,
		Segments: []*Segment{
			{VAddr: 0x1000, Flags: FlagR | FlagX, Data: []byte("prog:hello\x00")},
		},
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != TypeExec || g.Entry != 0x1000 {
		t.Fatalf("type=%d entry=%#x", g.Type, g.Entry)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Parse([]byte{0xfe, 0xed, 0xfa, 0xce, 0, 0, 0, 0}); err == nil {
		t.Fatal("macho magic should be rejected")
	}
	if _, ok := func() (any, bool) {
		_, err := Parse(nil)
		e, ok := err.(*ErrBadMagic)
		return e, ok
	}(); !ok {
		t.Fatal("want *ErrBadMagic for empty input")
	}
}

func TestTruncated(t *testing.T) {
	b, _ := sampleSO().Marshal()
	for _, cut := range []int{ehdrSize, ehdrSize + 10, len(b) - len(b)/4} {
		if _, err := Parse(b[:cut]); err == nil {
			t.Errorf("parse of %d/%d bytes should fail", cut, len(b))
		}
	}
}

func TestMagicBytes(t *testing.T) {
	b, _ := sampleSO().Marshal()
	if !bytes.Equal(b[:4], []byte{0x7f, 'E', 'L', 'F'}) {
		t.Fatalf("magic = %v", b[:4])
	}
	if b[4] != ClassELF32 || b[5] != Data2LSB {
		t.Fatalf("class/data = %d/%d", b[4], b[5])
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	check := func(soname string, needed []string, data []byte) bool {
		if !validName(soname) {
			return true
		}
		for _, n := range needed {
			if !validName(n) {
				return true
			}
		}
		f := &File{Type: TypeDyn, SoName: soname, Needed: needed,
			Segments: []*Segment{{Flags: FlagR, Data: data}}}
		b, err := f.Marshal()
		if err != nil {
			return false
		}
		g, err := Parse(b)
		if err != nil {
			return false
		}
		if g.SoName != soname || len(g.Needed) != len(needed) {
			return false
		}
		for i := range needed {
			if g.Needed[i] != needed[i] {
				return false
			}
		}
		return bytes.Equal(g.Segments[0].Data, data)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func validName(s string) bool {
	return len(s) > 0 && bytes.IndexByte([]byte(s), 0) < 0
}
