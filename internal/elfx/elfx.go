// Package elfx implements the ELF binary format used by domestic (Linux /
// Android) binaries and Bionic shared objects: byte-level encoding and
// decoding of 32-bit little-endian ARM ELF images with program headers, a
// dynamic segment (DT_NEEDED, DT_SONAME), and a dynamic symbol table.
//
// Cider needs both directions: the Linux kernel's ELF loader runs domestic
// binaries, and Cider cross-compiles an Android ELF loader as an iOS
// library so diplomatic functions can load domestic libraries inside
// foreign apps (Section 4.3). The encoding follows the real ELF32 layout
// (Elf32_Ehdr, Elf32_Phdr, Elf32_Dyn, Elf32_Sym); section headers are
// omitted, as they are for any stripped runtime image — the dynamic linker
// only consumes program headers and the dynamic table.
package elfx

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// ELF identification.
var magic = [4]byte{0x7f, 'E', 'L', 'F'}

const (
	// ClassELF32 is ELFCLASS32.
	ClassELF32 = 1
	// Data2LSB is ELFDATA2LSB (little endian).
	Data2LSB = 1
	// MachineARM is EM_ARM.
	MachineARM = 40
)

// Object file types (e_type).
const (
	// TypeExec is ET_EXEC.
	TypeExec = 2
	// TypeDyn is ET_DYN (shared object).
	TypeDyn = 3
)

// Program header types.
const (
	// PTLoad is PT_LOAD.
	PTLoad = 1
	// PTDynamic is PT_DYNAMIC.
	PTDynamic = 2
)

// Segment flags (p_flags).
const (
	// FlagX is PF_X.
	FlagX = 1
	// FlagW is PF_W.
	FlagW = 2
	// FlagR is PF_R.
	FlagR = 4
)

// Dynamic tags.
const (
	// DTNull terminates the dynamic table.
	DTNull = 0
	// DTNeeded names a required library.
	DTNeeded = 1
	// DTStrTab is the string table offset.
	DTStrTab = 5
	// DTSymTab is the symbol table offset.
	DTSymTab = 6
	// DTSoName is the shared object name.
	DTSoName = 14
	// DTSymCount is a private tag carrying the symbol count (real ELF
	// derives it from the hash table; the simulation has no hash table).
	DTSymCount = 0x6ffffff0
)

// Symbol binding/type for st_info.
const (
	// BindGlobal is STB_GLOBAL << 4.
	BindGlobal = 1 << 4
	// TypeFunc is STT_FUNC.
	TypeFunc = 2
)

// Segment is one PT_LOAD range.
type Segment struct {
	// VAddr is the load address.
	VAddr uint32
	// MemSize is the in-memory size (>= len(Data); rest zero-filled).
	MemSize uint32
	// Flags is the PF_* permission mask.
	Flags uint32
	// Data is the file contents.
	Data []byte
}

// Symbol is one dynamic symbol.
type Symbol struct {
	// Name is the symbol string (no leading underscore, ELF style).
	Name string
	// Value is the symbol address.
	Value uint32
	// Defined marks an export; undefined symbols are imports.
	Defined bool
}

// File is a parsed or under-construction ELF image.
type File struct {
	// Type is TypeExec or TypeDyn.
	Type uint16
	// Entry is the program entry point (e_entry).
	Entry uint32
	// Segments are the PT_LOAD ranges in file order.
	Segments []*Segment
	// Needed lists DT_NEEDED library names.
	Needed []string
	// SoName is the DT_SONAME of a shared object.
	SoName string
	// Symbols is the dynamic symbol table.
	Symbols []Symbol
}

// Lookup returns the symbol with the given name.
func (f *File) Lookup(name string) (Symbol, bool) {
	for _, s := range f.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// ExportedSymbols returns all defined symbols in table order.
func (f *File) ExportedSymbols() []Symbol {
	var out []Symbol
	for _, s := range f.Symbols {
		if s.Defined {
			out = append(out, s)
		}
	}
	return out
}

const (
	ehdrSize = 52 // sizeof(Elf32_Ehdr)
	phdrSize = 32 // sizeof(Elf32_Phdr)
	dynSize  = 8  // sizeof(Elf32_Dyn)
	symSize  = 16 // sizeof(Elf32_Sym)
)

var le = binary.LittleEndian

// Marshal encodes the image into ELF bytes.
func (f *File) Marshal() ([]byte, error) {
	// String table: NUL, then needed names, soname, symbol names.
	var strtab bytes.Buffer
	strtab.WriteByte(0)
	intern := func(s string) uint32 {
		off := uint32(strtab.Len())
		strtab.WriteString(s)
		strtab.WriteByte(0)
		return off
	}
	neededOff := make([]uint32, len(f.Needed))
	for i, n := range f.Needed {
		neededOff[i] = intern(n)
	}
	var sonameOff uint32
	if f.SoName != "" {
		sonameOff = intern(f.SoName)
	}
	symNameOff := make([]uint32, len(f.Symbols))
	for i, s := range f.Symbols {
		symNameOff[i] = intern(s.Name)
	}

	// Dynamic entries.
	type dyn struct{ tag, val uint32 }
	var dyns []dyn
	for _, off := range neededOff {
		dyns = append(dyns, dyn{DTNeeded, off})
	}
	if f.SoName != "" {
		dyns = append(dyns, dyn{DTSoName, sonameOff})
	}

	// Layout: ehdr, phdrs, segment data, dynamic, dynsym, dynstr.
	nph := len(f.Segments) + 1 // + PT_DYNAMIC
	off := ehdrSize + phdrSize*nph
	segOff := make([]int, len(f.Segments))
	for i, s := range f.Segments {
		segOff[i] = off
		off += len(s.Data)
	}
	dynOff := off
	// +3 for SYMTAB, STRTAB, SYMCOUNT; +1 for NULL.
	ndyn := len(dyns) + 4
	symOff := dynOff + ndyn*dynSize
	strOff := symOff + symSize*len(f.Symbols)
	dyns = append(dyns,
		dyn{DTSymTab, uint32(symOff)},
		dyn{DTStrTab, uint32(strOff)},
		dyn{DTSymCount, uint32(len(f.Symbols))},
		dyn{DTNull, 0},
	)

	var buf bytes.Buffer
	w := func(v any) { binary.Write(&buf, le, v) }

	// Elf32_Ehdr.
	buf.Write(magic[:])
	buf.WriteByte(ClassELF32)
	buf.WriteByte(Data2LSB)
	buf.WriteByte(1) // EV_CURRENT
	buf.Write(make([]byte, 9))
	w(f.Type)
	w(uint16(MachineARM))
	w(uint32(1)) // version
	w(f.Entry)
	w(uint32(ehdrSize)) // phoff
	w(uint32(0))        // shoff (no sections)
	w(uint32(0))        // flags
	w(uint16(ehdrSize))
	w(uint16(phdrSize))
	w(uint16(nph))
	w(uint16(0)) // shentsize
	w(uint16(0)) // shnum
	w(uint16(0)) // shstrndx

	// Program headers.
	for i, s := range f.Segments {
		memsz := s.MemSize
		if memsz < uint32(len(s.Data)) {
			memsz = uint32(len(s.Data))
		}
		w(uint32(PTLoad))
		w(uint32(segOff[i]))   // offset
		w(s.VAddr)             // vaddr
		w(s.VAddr)             // paddr
		w(uint32(len(s.Data))) // filesz
		w(memsz)               // memsz
		w(s.Flags)
		w(uint32(4096)) // align
	}
	dynTotal := uint32(strOff + strtab.Len() - dynOff)
	w(uint32(PTDynamic))
	w(uint32(dynOff))
	w(uint32(0))
	w(uint32(0))
	w(dynTotal)
	w(dynTotal)
	w(uint32(FlagR))
	w(uint32(4))

	// Segment data.
	for _, s := range f.Segments {
		buf.Write(s.Data)
	}
	// Dynamic table.
	for _, d := range dyns {
		w(d.tag)
		w(d.val)
	}
	// Dynamic symbols.
	for i, s := range f.Symbols {
		w(symNameOff[i])
		w(s.Value)
		w(uint32(0)) // size
		info := uint8(BindGlobal | TypeFunc)
		buf.WriteByte(info)
		buf.WriteByte(0) // other
		shndx := uint16(0)
		if s.Defined {
			shndx = 1
		}
		w(shndx)
	}
	buf.Write(strtab.Bytes())
	return buf.Bytes(), nil
}

// ErrBadMagic reports a non-ELF image.
type ErrBadMagic struct{}

func (e *ErrBadMagic) Error() string { return "elfx: bad ELF magic" }

// Parse decodes an ELF image.
func Parse(b []byte) (*File, error) {
	if len(b) < ehdrSize || !bytes.Equal(b[:4], magic[:]) {
		return nil, &ErrBadMagic{}
	}
	if b[4] != ClassELF32 || b[5] != Data2LSB {
		return nil, fmt.Errorf("elfx: unsupported class/data %d/%d", b[4], b[5])
	}
	f := &File{
		Type:  le.Uint16(b[16:]),
		Entry: le.Uint32(b[24:]),
	}
	phoff := int(le.Uint32(b[28:]))
	phentsize := int(le.Uint16(b[42:]))
	phnum := int(le.Uint16(b[44:]))
	var dynOff, dynSz int
	for i := 0; i < phnum; i++ {
		p := phoff + i*phentsize
		if p+phdrSize > len(b) {
			return nil, fmt.Errorf("elfx: truncated program headers")
		}
		typ := le.Uint32(b[p:])
		offset := int(le.Uint32(b[p+4:]))
		vaddr := le.Uint32(b[p+8:])
		filesz := int(le.Uint32(b[p+16:]))
		memsz := le.Uint32(b[p+20:])
		flags := le.Uint32(b[p+24:])
		switch typ {
		case PTLoad:
			if offset+filesz > len(b) {
				return nil, fmt.Errorf("elfx: PT_LOAD out of range")
			}
			f.Segments = append(f.Segments, &Segment{
				VAddr:   vaddr,
				MemSize: memsz,
				Flags:   flags,
				Data:    append([]byte(nil), b[offset:offset+filesz]...),
			})
		case PTDynamic:
			dynOff, dynSz = offset, filesz
		}
	}
	if dynOff == 0 {
		return f, nil
	}
	if dynOff+dynSz > len(b) {
		return nil, fmt.Errorf("elfx: PT_DYNAMIC out of range")
	}
	var symTab, strTab, symCount int
	var neededIdx []uint32
	var sonameIdx uint32
	hasSoname := false
	for p := dynOff; p+dynSize <= dynOff+dynSz; p += dynSize {
		tag := le.Uint32(b[p:])
		val := le.Uint32(b[p+4:])
		switch tag {
		case DTNull:
			p = dynOff + dynSz // break
		case DTNeeded:
			neededIdx = append(neededIdx, val)
		case DTSoName:
			sonameIdx, hasSoname = val, true
		case DTSymTab:
			symTab = int(val)
		case DTStrTab:
			strTab = int(val)
		case DTSymCount:
			symCount = int(val)
		}
	}
	if strTab >= len(b) {
		return nil, fmt.Errorf("elfx: string table out of range")
	}
	str := func(off uint32) string {
		if strTab+int(off) >= len(b) {
			return ""
		}
		s := b[strTab+int(off):]
		if i := bytes.IndexByte(s, 0); i >= 0 {
			return string(s[:i])
		}
		return string(s)
	}
	for _, idx := range neededIdx {
		f.Needed = append(f.Needed, str(idx))
	}
	if hasSoname {
		f.SoName = str(sonameIdx)
	}
	if symCount > 0 {
		if symTab+symCount*symSize > len(b) {
			return nil, fmt.Errorf("elfx: symbol table out of range")
		}
		for i := 0; i < symCount; i++ {
			e := b[symTab+i*symSize:]
			f.Symbols = append(f.Symbols, Symbol{
				Name:    str(le.Uint32(e[0:])),
				Value:   le.Uint32(e[4:]),
				Defined: le.Uint16(e[14:]) != 0,
			})
		}
	}
	return f, nil
}
