package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPageMath(t *testing.T) {
	cases := []struct{ size, pages, aligned uint64 }{
		{0, 0, 0},
		{1, 1, PageSize},
		{PageSize, 1, PageSize},
		{PageSize + 1, 2, 2 * PageSize},
		{90 << 20, 23040, 90 << 20},
	}
	for _, c := range cases {
		if got := PageCount(c.size); got != c.pages {
			t.Errorf("PageCount(%d) = %d, want %d", c.size, got, c.pages)
		}
		if got := PageAlign(c.size); got != c.aligned {
			t.Errorf("PageAlign(%d) = %d, want %d", c.size, got, c.aligned)
		}
	}
}

func TestMapAutoPlacement(t *testing.T) {
	as := NewAddressSpace()
	r1, err := as.Map(0, 100, ProtRead|ProtWrite, "a", false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := as.Map(0, 100, ProtRead|ProtWrite, "b", false)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Base == r2.Base {
		t.Fatal("auto-placed regions overlap")
	}
	if r1.Size != PageSize {
		t.Fatalf("size not page-aligned: %d", r1.Size)
	}
}

func TestMapFixedOverlapRejected(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Map(0x10000, PageSize, ProtRead, "a", false); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Map(0x10000, PageSize, ProtRead, "b", false); err == nil {
		t.Fatal("overlapping fixed map should fail")
	}
	if _, err := as.Map(0x10001, PageSize, ProtRead, "c", false); err == nil {
		t.Fatal("unaligned fixed map should fail")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	as := NewAddressSpace()
	r, err := as.Map(0, 2*PageSize, ProtRead|ProtWrite, "data", false)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello cider")
	if err := as.WriteAt(r.Base+100, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := as.ReadAt(r.Base+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

func TestAccessSpansRegions(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Map(0x10000, PageSize, ProtRead|ProtWrite, "a", false); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Map(0x10000+PageSize, PageSize, ProtRead|ProtWrite, "b", false); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	start := uint64(0x10000 + PageSize - 50)
	if err := as.WriteAt(start, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 100)
	if err := as.ReadAt(start, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-region access corrupted data")
	}
}

func TestFaults(t *testing.T) {
	as := NewAddressSpace()
	ro, _ := as.Map(0x10000, PageSize, ProtRead, "ro", false)
	buf := make([]byte, 4)
	if err := as.ReadAt(0x99999000, buf); err == nil {
		t.Fatal("read of unmapped memory should fault")
	}
	if err := as.WriteAt(ro.Base, buf); err == nil {
		t.Fatal("write to read-only memory should fault")
	}
	fe, ok := as.WriteAt(ro.Base, buf).(*ErrFault)
	if !ok || !fe.Write {
		t.Fatalf("want write ErrFault, got %v", fe)
	}
}

func TestForkCopiesPrivate(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(0, PageSize, ProtRead|ProtWrite, "priv", false)
	as.WriteAt(r.Base, []byte("parent"))
	child, ptes := as.Fork()
	if ptes != 1 {
		t.Fatalf("ptes = %d, want 1", ptes)
	}
	child.WriteAt(r.Base, []byte("child!"))
	got := make([]byte, 6)
	as.ReadAt(r.Base, got)
	if string(got) != "parent" {
		t.Fatalf("parent memory changed by child write: %q", got)
	}
}

func TestForkSharesShared(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(0, PageSize, ProtRead|ProtWrite, "shm", true)
	child, _ := as.Fork()
	child.WriteAt(r.Base, []byte("shared"))
	got := make([]byte, 6)
	as.ReadAt(r.Base, got)
	if string(got) != "shared" {
		t.Fatalf("shared mapping not visible across fork: %q", got)
	}
}

func TestForkPTECountMatchesPaper(t *testing.T) {
	// 90 MB of dylib mappings is ~23k PTEs — the source of the ~1ms extra
	// fork cost for iOS binaries (Section 6.2).
	as := NewAddressSpace()
	for i := 0; i < 115; i++ {
		if _, err := as.Map(0, (90<<20)/115, ProtRead|ProtExec, "dylib", false); err != nil {
			t.Fatal(err)
		}
	}
	_, ptes := as.Fork()
	if ptes < 23000 || ptes > 23200 {
		t.Fatalf("ptes = %d, want ~23040", ptes)
	}
}

func TestMapBackingSharing(t *testing.T) {
	b := NewBacking(2 * PageSize)
	as1, as2 := NewAddressSpace(), NewAddressSpace()
	r1, err := as1.MapBacking(0, PageSize, ProtRead|ProtWrite, "surf", true, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := as2.MapBacking(0, PageSize, ProtRead|ProtWrite, "surf", true, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", b.Refs())
	}
	as1.WriteAt(r1.Base, []byte("zero-copy"))
	got := make([]byte, 9)
	as2.ReadAt(r2.Base, got)
	if string(got) != "zero-copy" {
		t.Fatalf("cross-space shared backing broken: %q", got)
	}
	if _, err := as1.MapBacking(0, 4*PageSize, ProtRead, "big", true, b, 0); err == nil {
		t.Fatal("mapping beyond backing should fail")
	}
}

func TestUnmap(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(0, PageSize, ProtRead, "a", false)
	if err := as.Unmap(r.Base); err != nil {
		t.Fatal(err)
	}
	if as.FindRegion(r.Base) != nil {
		t.Fatal("region still present after unmap")
	}
	if err := as.Unmap(r.Base); err == nil {
		t.Fatal("double unmap should fail")
	}
	if r.Backing().Refs() != 0 {
		t.Fatalf("backing refs = %d after unmap, want 0", r.Backing().Refs())
	}
}

func TestUnmapAll(t *testing.T) {
	as := NewAddressSpace()
	as.Map(0, PageSize, ProtRead, "a", false)
	as.Map(0, PageSize, ProtRead, "b", false)
	as.UnmapAll()
	if as.PageCount() != 0 || len(as.Regions()) != 0 {
		t.Fatal("UnmapAll left regions behind")
	}
}

func TestFindByName(t *testing.T) {
	as := NewAddressSpace()
	as.Map(0, PageSize, ProtRead, "/usr/lib/libSystem.dylib", false)
	if as.FindByName("/usr/lib/libSystem.dylib") == nil {
		t.Fatal("FindByName failed")
	}
	if as.FindByName("nope") != nil {
		t.Fatal("FindByName found a ghost")
	}
}

func TestMapsListing(t *testing.T) {
	as := NewAddressSpace()
	as.Map(0x10000, PageSize, ProtRead|ProtExec, "text", false)
	s := as.Maps()
	if want := "00010000-00011000 r-x text\n"; s != want {
		t.Fatalf("Maps() = %q, want %q", s, want)
	}
}

func TestPropertyReadBackWhatYouWrite(t *testing.T) {
	as := NewAddressSpace()
	r, _ := as.Map(0, 16*PageSize, ProtRead|ProtWrite, "prop", false)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := r.Base + uint64(off)
		if uint64(off)+uint64(len(data)) > r.Size {
			return true // out of range: skip
		}
		if err := as.WriteAt(addr, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := as.ReadAt(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPageCountConsistent(t *testing.T) {
	f := func(sizes []uint16) bool {
		as := NewAddressSpace()
		var want uint64
		for _, s := range sizes {
			if s == 0 {
				continue
			}
			if _, err := as.Map(0, uint64(s), ProtRead, "r", false); err != nil {
				return false
			}
			want += PageCount(uint64(s))
		}
		return as.PageCount() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
