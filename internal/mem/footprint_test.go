package mem

import "testing"

// Footprint-exactness tests: the per-space attribution ledgers behind
// jetsam. The invariants under test are the ones memorystatus decisions
// ride on — a backing is charged to a space only once materialized, a
// shared store is attributed per mapping window (never double within a
// space), a fork's eager COW copy re-attributes to the child, and the
// ledger returns to exactly zero when the last window closes.

func TestFootprintZeroUntilMaterialized(t *testing.T) {
	as := NewAddressSpace()
	r, err := as.Map(0, 3*PageSize, ProtRead|ProtWrite, "zfod", false)
	if err != nil {
		t.Fatal(err)
	}
	if got := as.Footprint(); got != 0 {
		t.Fatalf("untouched zero-fill mapping charged %d bytes", got)
	}
	r.Backing().Bytes()
	if got := as.Footprint(); got != 3*PageSize {
		t.Fatalf("materialized footprint = %d, want %d", got, 3*PageSize)
	}
}

func TestFootprintSharedBackingPerMapping(t *testing.T) {
	// Two tasks mapping one Backing each carry their own window: the sum
	// over spaces may exceed the physical store (as with real resident
	// accounting of shared pages per-task), but each space is charged
	// exactly its window.
	b := NewBacking(4 * PageSize)
	a1 := NewAddressSpace()
	a2 := NewAddressSpace()
	if _, err := a1.MapBacking(0, 4*PageSize, ProtRead, "shm", true, b, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a2.MapBacking(0, 2*PageSize, ProtRead, "shm", true, b, 0); err != nil {
		t.Fatal(err)
	}
	if a1.Footprint() != 0 || a2.Footprint() != 0 {
		t.Fatalf("zero-fill shared store charged before materialization: %d/%d", a1.Footprint(), a2.Footprint())
	}
	b.Bytes() // one materialization re-attributes every mapping space
	if got := a1.Footprint(); got != 4*PageSize {
		t.Fatalf("space 1 footprint = %d, want %d", got, 4*PageSize)
	}
	if got := a2.Footprint(); got != 2*PageSize {
		t.Fatalf("space 2 footprint = %d, want %d", got, 2*PageSize)
	}
}

func TestFootprintAliasChargedOnce(t *testing.T) {
	// One task aliasing the same store twice (IOSurface, Mach OOL) is
	// charged the store once, never twice: the attribution window is
	// capped at the backing size.
	b := NewBacking(2 * PageSize)
	as := NewAddressSpace()
	if _, err := as.MapBacking(0, 2*PageSize, ProtRead, "alias1", true, b, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MapBacking(0, 2*PageSize, ProtRead, "alias2", true, b, 0); err != nil {
		t.Fatal(err)
	}
	b.Bytes()
	if got := as.Footprint(); got != 2*PageSize {
		t.Fatalf("double-aliased store charged %d, want %d (once)", got, 2*PageSize)
	}
	// Dropping one alias must not release the charge; dropping the last
	// must zero it.
	if err := as.Unmap(as.Regions()[0].Base); err != nil {
		t.Fatal(err)
	}
	if got := as.Footprint(); got != 2*PageSize {
		t.Fatalf("after dropping one alias: %d, want %d", got, 2*PageSize)
	}
	if err := as.Unmap(as.Regions()[0].Base); err != nil {
		t.Fatal(err)
	}
	if got := as.Footprint(); got != 0 {
		t.Fatalf("after dropping last alias: %d, want 0", got)
	}
}

func TestFootprintForkReattributesPrivateCopy(t *testing.T) {
	// Fork copies materialized private stores eagerly (the simulation's
	// COW split): the child must be charged for its own copy, the parent's
	// charge must be untouched, and the two ledgers must be independent
	// from then on.
	parent := NewAddressSpace()
	r, err := parent.Map(0, 2*PageSize, ProtRead|ProtWrite, "heap", false)
	if err != nil {
		t.Fatal(err)
	}
	r.Backing().Bytes()
	child, _ := parent.Fork()
	if got := child.Footprint(); got != 2*PageSize {
		t.Fatalf("child footprint after fork = %d, want %d", got, 2*PageSize)
	}
	if got := parent.Footprint(); got != 2*PageSize {
		t.Fatalf("parent footprint perturbed by fork: %d", got)
	}
	child.UnmapAll()
	if got := child.Footprint(); got != 0 {
		t.Fatalf("child footprint after UnmapAll = %d, want 0", got)
	}
	if got := parent.Footprint(); got != 2*PageSize {
		t.Fatalf("parent footprint perturbed by child unmap: %d", got)
	}
}

func TestFootprintForkUntouchedStaysUncommitted(t *testing.T) {
	// An untouched zero-fill parent store stays uncommitted in the child:
	// forking must not fabricate resident bytes on either side.
	parent := NewAddressSpace()
	if _, err := parent.Map(0, 8*PageSize, ProtRead|ProtWrite, "lazy", false); err != nil {
		t.Fatal(err)
	}
	child, _ := parent.Fork()
	if p, c := parent.Footprint(), child.Footprint(); p != 0 || c != 0 {
		t.Fatalf("fork committed zero-fill stores: parent=%d child=%d", p, c)
	}
}

func TestFootprintHookObservesEveryDelta(t *testing.T) {
	// The hook stream must mirror the ledger exactly: summing deltas
	// reproduces Footprint() at every step, and the final unmap brings the
	// sum back to zero — this is the stream memorystatus rides.
	as := NewAddressSpace()
	var sum int64
	as.FootprintHook = func(d int64) { sum += d }
	r1, _ := as.Map(0, PageSize, ProtRead|ProtWrite, "a", false)
	r2, _ := as.Map(0, 3*PageSize, ProtRead|ProtWrite, "b", false)
	r1.Backing().Bytes()
	if sum != int64(as.Footprint()) || sum != PageSize {
		t.Fatalf("after first touch: sum=%d footprint=%d", sum, as.Footprint())
	}
	r2.Backing().Bytes()
	if sum != int64(as.Footprint()) || sum != 4*PageSize {
		t.Fatalf("after second touch: sum=%d footprint=%d", sum, as.Footprint())
	}
	as.UnmapAll()
	if sum != 0 || as.Footprint() != 0 {
		t.Fatalf("after UnmapAll: sum=%d footprint=%d, want 0/0", sum, as.Footprint())
	}
}
