// Package mem implements simulated virtual memory: per-task address spaces
// made of mapped regions with page-granular accounting.
//
// The page accounting is what makes the paper's fork numbers reproducible:
// an iOS process whose dyld has mapped 115 dylibs (~90 MB) pays for copying
// every page-table entry on fork, which is where ~1 ms of the 3.75 ms iOS
// fork+exit latency comes from (Section 6.2).
package mem

import (
	"fmt"
	"sort"
)

// PageSize is the simulated page size (4 KB, as on ARM Linux and XNU).
const PageSize = 4096

// PageCount returns the number of pages needed to hold size bytes.
func PageCount(size uint64) uint64 {
	return (size + PageSize - 1) / PageSize
}

// PageAlign rounds size up to a page boundary.
func PageAlign(size uint64) uint64 {
	return PageCount(size) * PageSize
}

// Prot is a bitmask of region access permissions.
type Prot uint8

const (
	// ProtRead allows loads.
	ProtRead Prot = 1 << iota
	// ProtWrite allows stores.
	ProtWrite
	// ProtExec allows instruction fetch.
	ProtExec
)

func (p Prot) String() string {
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Backing is the physical store behind one or more regions. Shared mappings
// (Mach OOL memory, IOSurfaces, gralloc buffers) alias the same Backing.
//
// The store is zero-fill-on-demand: no host memory is allocated until the
// first byte is actually read or written. Most simulated mappings — the
// ~90 MB of dylib text dyld maps on every iOS exec above all — are pure
// accounting (fork charges for their PTEs, nothing loads from them), and
// eagerly allocating + zeroing them dominated the host-side profile of
// the Fig. 5 battery.
type Backing struct {
	size uint64
	// data stays nil until materialize; untouched backings read as zeros.
	data []byte
	refs int
	// spaces lists the address spaces holding live footprint accounts for
	// this backing (deduplicated): when the store materializes, each space
	// re-attributes its resident share. See AddressSpace.recharge.
	spaces []*AddressSpace
}

// NewBacking creates a zeroed backing store of size bytes. Host memory is
// not committed until first access.
func NewBacking(size uint64) *Backing {
	return &Backing{size: size}
}

// Size returns the store's length in bytes without materializing it.
func (b *Backing) Size() uint64 { return b.size }

// materialize commits the host memory on first access. Committing the
// store is the simulated zero-fill-on-demand fault: every address space
// mapping the backing re-attributes its resident share at this point, so
// the task that triggered the fault — and every task aliasing the store —
// sees its footprint rise at the same virtual instant.
func (b *Backing) materialize() []byte {
	if b.data == nil && b.size > 0 {
		b.data = make([]byte, b.size)
		for _, as := range b.spaces {
			as.recharge(b)
		}
	}
	return b.data
}

// Bytes exposes the raw store (used by the GPU and compositor simulators),
// committing it if it was still zero-fill-on-demand.
func (b *Backing) Bytes() []byte { return b.materialize() }

// Refs reports how many regions currently alias this backing.
func (b *Backing) Refs() int { return b.refs }

// Region is one contiguous mapping in an address space.
type Region struct {
	// Base is the starting virtual address (page aligned).
	Base uint64
	// Size is the mapping length in bytes (page aligned).
	Size uint64
	// Prot is the access permission.
	Prot Prot
	// Name labels the mapping for /proc/maps-style dumps (binary path,
	// "[stack]", "[heap]", dylib path, ...).
	Name string
	// Shared marks the mapping as shared rather than private: fork children
	// alias the same Backing instead of copying.
	Shared bool
	// Submap marks a nested-map mapping (XNU's shared-region mechanism,
	// used by dyld's shared library cache): fork shares it without copying
	// any page-table entries, which is why the iPad's fork is fast despite
	// its 90 MB of mapped libraries (Section 6.2).
	Submap  bool
	backing *Backing
	// offset is the region's start within the backing store.
	offset uint64
}

// End returns the first address past the region.
func (r *Region) End() uint64 { return r.Base + r.Size }

// Pages returns the number of page-table entries this region occupies.
func (r *Region) Pages() uint64 { return PageCount(r.Size) }

// Backing returns the region's physical store.
func (r *Region) Backing() *Backing { return r.backing }

func (r *Region) String() string {
	return fmt.Sprintf("%08x-%08x %s %s", r.Base, r.End(), r.Prot, r.Name)
}

// ErrFault is the simulated memory access fault (SIGSEGV/SIGBUS source).
type ErrFault struct {
	// Addr is the faulting address.
	Addr uint64
	// Write indicates a store fault; otherwise a load fault.
	Write bool
}

func (e *ErrFault) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("mem: fault: invalid %s at 0x%x", kind, e.Addr)
}

// backingAccount is one address space's attribution record for a backing:
// how many mapped window bytes the space holds over it, and how many
// resident bytes are currently charged to the space for it.
type backingAccount struct {
	window  uint64
	charged uint64
}

// AddressSpace is a task's virtual memory map.
type AddressSpace struct {
	regions []*Region // sorted by Base
	// nextAuto is the next address the allocator hands out for
	// address-unspecified mappings.
	nextAuto uint64
	// MapHook, when non-nil, is consulted before any new mapping is
	// created; a non-nil error fails the Map like an allocation failure
	// (fault injection, rlimit enforcement). Fork propagates the hook to
	// children.
	MapHook func(size uint64, name string) error
	// accounts holds one attribution record per distinct backing mapped by
	// this space. Attribution is per-mapping-window, capped at the backing
	// size: two tasks mapping one Backing each carry their own window, and
	// one task aliasing the same store twice (IOSurface, Mach OOL) is
	// charged the store once, never twice.
	accounts map[*Backing]*backingAccount
	// footprint is the resident bytes currently attributed to this space:
	// the sum over accounts of charged bytes. Zero-fill backings that were
	// never touched contribute nothing.
	footprint uint64
	// FootprintHook, when non-nil, observes every footprint change (delta
	// in bytes, negative on unmap). The kernel threads memorystatus
	// watermark evaluation through it. Fork deliberately does not copy the
	// hook: the child's owner rebinds it and adopts the initial footprint.
	FootprintHook func(delta int64)
}

// mmapBase is where automatic placement starts (above typical text bases).
const mmapBase = 0x4000_0000

// NewAddressSpace creates an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{nextAuto: mmapBase}
}

// Regions returns the mappings in address order. The slice is shared; do
// not mutate.
func (as *AddressSpace) Regions() []*Region { return as.regions }

// PageCount returns the total number of mapped pages — the number of PTEs a
// fork must copy.
func (as *AddressSpace) PageCount() uint64 {
	var n uint64
	for _, r := range as.regions {
		n += r.Pages()
	}
	return n
}

// PTECount returns the pages whose table entries the process itself owns:
// submap (shared-region) pages are excluded, matching what fork copies and
// exec tears down.
func (as *AddressSpace) PTECount() uint64 {
	var n uint64
	for _, r := range as.regions {
		if !r.Submap {
			n += r.Pages()
		}
	}
	return n
}

// MappedBytes returns the total mapped size.
func (as *AddressSpace) MappedBytes() uint64 {
	var n uint64
	for _, r := range as.regions {
		n += r.Size
	}
	return n
}

// Footprint returns the resident bytes attributed to this space: for each
// distinct backing, the mapped window bytes capped at the backing size,
// counted only once the store has materialized. This is the jetsam
// ledger's per-task number.
func (as *AddressSpace) Footprint() uint64 { return as.footprint }

// recharge re-attributes this space's resident share of b: the mapped
// window capped at the backing size when the store is materialized, zero
// while it is still zero-fill. The delta is applied to the footprint and
// reported through FootprintHook.
func (as *AddressSpace) recharge(b *Backing) {
	acct := as.accounts[b]
	if acct == nil {
		return
	}
	var want uint64
	if b.data != nil {
		want = acct.window
		if want > b.size {
			want = b.size
		}
	}
	if want == acct.charged {
		return
	}
	delta := int64(want) - int64(acct.charged)
	acct.charged = want
	as.footprint = uint64(int64(as.footprint) + delta)
	if as.FootprintHook != nil {
		as.FootprintHook(delta)
	}
}

// attach opens or grows this space's attribution window over r's backing.
func (as *AddressSpace) attach(r *Region) {
	b := r.backing
	if as.accounts == nil {
		as.accounts = make(map[*Backing]*backingAccount)
	}
	acct := as.accounts[b]
	if acct == nil {
		acct = &backingAccount{}
		as.accounts[b] = acct
		b.spaces = append(b.spaces, as)
	}
	acct.window += r.Size
	as.recharge(b)
}

// detach shrinks this space's attribution window over r's backing,
// releasing the account (and the backing's notification link) when the
// last window closes.
func (as *AddressSpace) detach(r *Region) {
	b := r.backing
	acct := as.accounts[b]
	if acct == nil {
		return
	}
	acct.window -= r.Size
	as.recharge(b)
	if acct.window == 0 {
		delete(as.accounts, b)
		for i, s := range b.spaces {
			if s == as {
				b.spaces = append(b.spaces[:i], b.spaces[i+1:]...)
				break
			}
		}
	}
}

// find returns the region containing addr, or nil.
func (as *AddressSpace) find(addr uint64) *Region {
	i := sort.Search(len(as.regions), func(i int) bool {
		return as.regions[i].End() > addr
	})
	if i < len(as.regions) && as.regions[i].Base <= addr {
		return as.regions[i]
	}
	return nil
}

// FindRegion returns the region containing addr, or nil.
func (as *AddressSpace) FindRegion(addr uint64) *Region { return as.find(addr) }

// FindByName returns the first region with the given name, or nil.
func (as *AddressSpace) FindByName(name string) *Region {
	for _, r := range as.regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// overlaps reports whether [base, base+size) intersects any mapping.
func (as *AddressSpace) overlaps(base, size uint64) bool {
	for _, r := range as.regions {
		if base < r.End() && r.Base < base+size {
			return true
		}
	}
	return false
}

// insert adds r keeping address order.
func (as *AddressSpace) insert(r *Region) {
	i := sort.Search(len(as.regions), func(i int) bool {
		return as.regions[i].Base > r.Base
	})
	as.regions = append(as.regions, nil)
	copy(as.regions[i+1:], as.regions[i:])
	as.regions[i] = r
	r.backing.refs++
	as.attach(r)
}

// Map creates a new mapping. base==0 requests automatic placement. size is
// rounded up to a page boundary. A fresh zeroed backing is allocated.
func (as *AddressSpace) Map(base, size uint64, prot Prot, name string, shared bool) (*Region, error) {
	return as.MapBacking(base, size, prot, name, shared, nil, 0)
}

// MapBacking creates a mapping over an existing backing store (shared
// memory, IOSurface, Mach OOL transfer). backing==nil allocates a fresh
// store. offset is the region's start within the backing.
func (as *AddressSpace) MapBacking(base, size uint64, prot Prot, name string, shared bool, backing *Backing, offset uint64) (*Region, error) {
	if as.MapHook != nil {
		if err := as.MapHook(size, name); err != nil {
			return nil, err
		}
	}
	if size == 0 {
		return nil, fmt.Errorf("mem: zero-size mapping %q", name)
	}
	size = PageAlign(size)
	if base == 0 {
		base = as.nextAuto
		for as.overlaps(base, size) {
			base += size
		}
		as.nextAuto = base + size
	} else if base%PageSize != 0 {
		return nil, fmt.Errorf("mem: unaligned base 0x%x for %q", base, name)
	} else if as.overlaps(base, size) {
		return nil, fmt.Errorf("mem: mapping %q at 0x%x overlaps existing region", name, base)
	}
	if backing == nil {
		backing = NewBacking(size)
		offset = 0
	} else if offset+size > backing.size {
		return nil, fmt.Errorf("mem: mapping %q exceeds backing (%d+%d > %d)", name, offset, size, backing.size)
	}
	r := &Region{Base: base, Size: size, Prot: prot, Name: name, Shared: shared, backing: backing, offset: offset}
	as.insert(r)
	return r, nil
}

// Unmap removes the mapping starting exactly at base.
func (as *AddressSpace) Unmap(base uint64) error {
	for i, r := range as.regions {
		if r.Base == base {
			as.regions = append(as.regions[:i], as.regions[i+1:]...)
			r.backing.refs--
			as.detach(r)
			return nil
		}
	}
	return fmt.Errorf("mem: unmap: no region at 0x%x", base)
}

// UnmapAll drops every mapping (exec, exit). The footprint returns to
// exactly zero: every attribution window closes with its mapping.
func (as *AddressSpace) UnmapAll() {
	for _, r := range as.regions {
		r.backing.refs--
		as.detach(r)
	}
	as.regions = nil
	as.nextAuto = mmapBase
}

// ReadAt copies len(buf) bytes from vaddr, faulting on unmapped or
// unreadable memory. Reads may span adjacent regions.
func (as *AddressSpace) ReadAt(vaddr uint64, buf []byte) error {
	return as.access(vaddr, buf, false)
}

// WriteAt copies buf to vaddr, faulting on unmapped or read-only memory.
func (as *AddressSpace) WriteAt(vaddr uint64, buf []byte) error {
	return as.access(vaddr, buf, true)
}

func (as *AddressSpace) access(vaddr uint64, buf []byte, write bool) error {
	for len(buf) > 0 {
		r := as.find(vaddr)
		if r == nil {
			return &ErrFault{Addr: vaddr, Write: write}
		}
		if write && r.Prot&ProtWrite == 0 {
			return &ErrFault{Addr: vaddr, Write: true}
		}
		if !write && r.Prot&ProtRead == 0 {
			return &ErrFault{Addr: vaddr, Write: false}
		}
		off := r.offset + (vaddr - r.Base)
		n := copyLen(uint64(len(buf)), r.End()-vaddr)
		if write {
			data := r.backing.materialize()
			copy(data[off:off+n], buf[:n])
		} else if r.backing.data == nil {
			// Untouched zero-fill backing: the read sees zeros without
			// committing the store.
			clear(buf[:n])
		} else {
			copy(buf[:n], r.backing.data[off:off+n])
		}
		buf = buf[n:]
		vaddr += n
	}
	return nil
}

func copyLen(want, avail uint64) uint64 {
	if want < avail {
		return want
	}
	return avail
}

// Fork clones the address space for a child task, returning the clone and
// the number of page-table entries copied (the caller charges PTE-copy time
// for them). Private regions are deep-copied; shared regions alias the same
// backing, but their PTEs are still copied.
//
// Footprint re-attribution follows the copy: a materialized private store
// is split — the parent keeps its charge on the old backing, the child is
// charged for its fresh copy — while shared and submap stores attribute
// the child's window on the common backing. FootprintHook is not
// propagated (the clone's owner rebinds it and adopts the accumulated
// footprint); MapHook is, matching the fork semantics of rlimit state.
func (as *AddressSpace) Fork() (*AddressSpace, uint64) {
	child := NewAddressSpace()
	child.nextAuto = as.nextAuto
	child.MapHook = as.MapHook
	var ptes uint64
	for _, r := range as.regions {
		if !r.Submap {
			ptes += r.Pages()
		}
		nr := &Region{Base: r.Base, Size: r.Size, Prot: r.Prot, Name: r.Name, Shared: r.Shared, Submap: r.Submap, offset: r.offset}
		if r.Shared || r.Submap {
			nr.backing = r.backing
		} else {
			// The simulation copies eagerly rather than COW; the PTE count,
			// which is what the fork latency model charges for, is the same.
			// An untouched zero-fill parent store stays uncommitted in the
			// child too — there is nothing to copy.
			nb := NewBacking(r.backing.size)
			if r.backing.data != nil {
				copy(nb.materialize(), r.backing.data)
			}
			nr.backing = nb
		}
		child.insert(nr)
	}
	return child, ptes
}

// Maps renders a /proc/pid/maps-style listing.
func (as *AddressSpace) Maps() string {
	out := ""
	for _, r := range as.regions {
		out += r.String() + "\n"
	}
	return out
}
