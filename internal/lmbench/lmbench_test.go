package lmbench

import (
	"strings"
	"testing"
)

// report is shared across tests: running all four configurations once
// takes a few real seconds.
var cachedReport *Report

func figure5(t *testing.T) *Report {
	t.Helper()
	if cachedReport == nil {
		rep, err := RunFigure5()
		if err != nil {
			t.Fatal(err)
		}
		cachedReport = rep
	}
	return cachedReport
}

func norm(t *testing.T, rep *Report, test, cfg string) float64 {
	t.Helper()
	v, ok := rep.Normalized(test, cfg)
	if !ok {
		t.Fatalf("%s/%s did not produce a normalized value", test, cfg)
	}
	return v
}

func TestBasicOpsShape(t *testing.T) {
	rep := figure5(t)
	// "The basic CPU operation measurements were essentially the same for
	// all three system configurations using the Android device, except for
	// the integer divide test."
	for _, test := range []string{"int mul", "double add", "double mul", "double bogomflops"} {
		for _, cfg := range []string{ConfigCiderAndroid, ConfigCiderIOS} {
			v := norm(t, rep, test, cfg)
			if v < 0.98 || v > 1.02 {
				t.Errorf("%s on %s = %.3f, want ≈1.0", test, cfg, v)
			}
		}
		// "In all cases, the measurements for the iOS device were worse."
		if v := norm(t, rep, test, ConfigIPad); v <= 1.05 {
			t.Errorf("%s on ipad = %.3f, want > 1.05", test, v)
		}
	}
	// intdiv: "the Linux compiler generated more optimized code than the
	// iOS compiler" — the iOS binary is slower even on the same device.
	if v := norm(t, rep, "int div", ConfigCiderIOS); v < 1.3 {
		t.Errorf("int div on cider-ios = %.3f, want > 1.3 (Xcode codegen)", v)
	}
	if v := norm(t, rep, "int div", ConfigCiderAndroid); v < 0.98 || v > 1.02 {
		t.Errorf("int div on cider-android = %.3f, want ≈1.0", v)
	}
}

func TestNullSyscallOverheads(t *testing.T) {
	rep := figure5(t)
	// "The overhead is 8.5% over vanilla Android running the same Linux
	// binary" and "40% when running the iOS binary".
	if v := norm(t, rep, "null syscall", ConfigCiderAndroid); v < 1.06 || v > 1.12 {
		t.Errorf("null syscall cider-android = %.3f, want ≈1.085", v)
	}
	if v := norm(t, rep, "null syscall", ConfigCiderIOS); v < 1.30 || v > 1.52 {
		t.Errorf("null syscall cider-ios = %.3f, want ≈1.40", v)
	}
}

func TestUsefulSyscallsHideOverhead(t *testing.T) {
	rep := figure5(t)
	// "These overheads fall into the noise for syscalls that perform some
	// useful function."
	for _, test := range []string{"read", "write", "open/close"} {
		if v := norm(t, rep, test, ConfigCiderIOS); v > 1.25 {
			t.Errorf("%s cider-ios = %.3f, want < 1.25", test, v)
		}
	}
}

func TestSignalHandlerOverheads(t *testing.T) {
	rep := figure5(t)
	// 3% for the Linux binary, 25% for the iOS binary.
	if v := norm(t, rep, "signal handler", ConfigCiderAndroid); v < 1.01 || v > 1.08 {
		t.Errorf("signal cider-android = %.3f, want ≈1.03", v)
	}
	ciderIOS := norm(t, rep, "signal handler", ConfigCiderIOS)
	if ciderIOS < 1.15 || ciderIOS > 1.38 {
		t.Errorf("signal cider-ios = %.3f, want ≈1.25", ciderIOS)
	}
	// "Running the iOS binary on the iPad mini takes 175% longer than
	// running the same binary on the Nexus 7 using Cider."
	ipad := norm(t, rep, "signal handler", ConfigIPad)
	ratio := ipad / ciderIOS
	if ratio < 2.2 || ratio > 3.3 {
		t.Errorf("ipad/cider-ios signal = %.2f, want ≈2.75", ratio)
	}
}

func TestForkExitShape(t *testing.T) {
	rep := figure5(t)
	// Negligible overhead for the Linux binary; ~14x for the iOS binary.
	if v := norm(t, rep, "fork+exit", ConfigCiderAndroid); v > 1.08 {
		t.Errorf("fork+exit cider-android = %.3f, want ≈1.0", v)
	}
	v := norm(t, rep, "fork+exit", ConfigCiderIOS)
	if v < 11 || v > 17 {
		t.Errorf("fork+exit cider-ios = %.1fx, want ≈14x", v)
	}
	// iPad significantly faster than Cider-iOS thanks to the shared cache.
	ipad := norm(t, rep, "fork+exit", ConfigIPad)
	if ipad >= v {
		t.Errorf("fork+exit ipad (%.1fx) should beat cider-ios (%.1fx)", ipad, v)
	}
}

func TestForkExecShape(t *testing.T) {
	rep := figure5(t)
	// fork+exec(android): negligible for Linux binary; ~4.8x for iOS.
	if v := norm(t, rep, "fork+exec(android)", ConfigCiderAndroid); v > 1.08 {
		t.Errorf("fork+exec(android) cider-android = %.3f", v)
	}
	v := norm(t, rep, "fork+exec(android)", ConfigCiderIOS)
	if v < 3.5 || v > 6.5 {
		t.Errorf("fork+exec(android) cider-ios = %.1fx, want ≈4.8x", v)
	}
	// fork+exec(ios) is "much more expensive" (non-prelinked dyld walk).
	vi := norm(t, rep, "fork+exec(ios)", ConfigCiderIOS)
	if vi < 15 {
		t.Errorf("fork+exec(ios) cider-ios = %.1fx, want >> fork+exec(android)", vi)
	}
	// The iPad's shared cache avoids the walk.
	ipad := norm(t, rep, "fork+exec(ios)", ConfigIPad)
	if ipad >= vi {
		t.Errorf("fork+exec(ios) ipad (%.1fx) should beat cider-ios (%.1fx)", ipad, vi)
	}
	// Impossible combinations are reported as failures, not numbers.
	if _, ok := rep.Normalized("fork+exec(ios)", ConfigAndroid); ok {
		t.Error("fork+exec(ios) must fail on vanilla Android")
	}
	if _, ok := rep.Normalized("fork+exec(android)", ConfigIPad); ok {
		t.Error("fork+exec(android) must fail on the iPad")
	}
}

func TestForkShShape(t *testing.T) {
	rep := figure5(t)
	// "Cider incurs negligible overhead versus vanilla Android when the
	// test program is a Linux binary, but takes 110% longer when the test
	// program is an iOS binary" (relative overhead smaller than
	// fork+exec because the shell is expensive).
	if v := norm(t, rep, "fork+sh(android)", ConfigCiderAndroid); v > 1.08 {
		t.Errorf("fork+sh(android) cider-android = %.3f", v)
	}
	v := norm(t, rep, "fork+sh(android)", ConfigCiderIOS)
	if v < 1.7 || v > 2.6 {
		t.Errorf("fork+sh(android) cider-ios = %.2fx, want ≈2.1x", v)
	}
	feIOS := norm(t, rep, "fork+exec(ios)", ConfigCiderIOS)
	fsIOS := norm(t, rep, "fork+sh(ios)", ConfigCiderIOS)
	// "Because the fork+sh(ios) test takes longer, the relative overhead
	// is less than the fork+exec(ios) measurement" — each is normalized
	// against its android-variant baseline.
	if fsIOS >= feIOS {
		t.Errorf("fork+sh(ios) normalized (%.1fx) should be below fork+exec(ios)'s (%.1fx)",
			fsIOS, feIOS)
	}
}

func TestCommShape(t *testing.T) {
	rep := figure5(t)
	// "Measurements were quite similar for all three system configurations
	// using the Android device."
	for _, test := range []string{"pipe", "AF_UNIX", "select 10", "select 100", "0KB create", "10KB delete"} {
		for _, cfg := range []string{ConfigCiderAndroid, ConfigCiderIOS} {
			if v := norm(t, rep, test, cfg); v < 0.9 || v > 1.3 {
				t.Errorf("%s on %s = %.3f, want ≈1.0", test, cfg, v)
			}
		}
	}
	// "Measurements on the iPad mini were significantly worse in a number
	// of cases. Perhaps the worst offender was the select test whose
	// overhead increased linearly ... to more than 10 times."
	if v := norm(t, rep, "select 100", ConfigIPad); v < 5 {
		t.Errorf("select 100 ipad = %.1fx, want large", v)
	}
	if _, ok := rep.Normalized("select 250", ConfigIPad); ok {
		t.Error("select 250 must fail on the iPad")
	}
	if _, ok := rep.Normalized("select 250", ConfigCiderIOS); !ok {
		t.Error("select 250 must succeed on Cider")
	}
}

func TestRenderedReport(t *testing.T) {
	rep := figure5(t)
	out := rep.Render()
	for _, want := range []string{"Figure 5", "null syscall", "fork+exit", "select 250", "n/a"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
