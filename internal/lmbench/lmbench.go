// Package lmbench ports the lmbench 3.0 microbenchmarks used in the
// paper's Figure 5 to the simulated systems: basic CPU operations,
// syscalls and signals, process creation, and local communication / file
// operations, each run on the four configurations (vanilla Android, Cider
// running the Linux binary, Cider running the iOS binary, and the iPad
// mini) and normalized to vanilla Android.
//
// As in the paper, the tests are compiled twice — "an ELF Linux binary
// version, and a Mach-O iOS binary version, using the standard Linux GCC
// 4.4.1 and Xcode 4.2.1 compilers" — which here means the driver is
// installed as a real ELF or Mach-O image whose compute charges are scaled
// by the matching toolchain model.
package lmbench

import (
	"fmt"
	"time"

	"repro/internal/bionic"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/libsystem"
)

// Binary selects which compiled form of the benchmark runs.
type Binary int

const (
	// BinaryLinux is the GCC-built ELF version.
	BinaryLinux Binary = iota
	// BinaryIOS is the Xcode-built Mach-O version.
	BinaryIOS
)

func (b Binary) String() string {
	if b == BinaryIOS {
		return "ios"
	}
	return "linux"
}

// libc abstracts the two binaries' C libraries behind one surface so each
// test body is written once, exactly as lmbench's source is.
type libc interface {
	Fork(child func(libc)) int
	Exit(status int)
	Exec(path string, argv []string) kernel.Errno
	Wait(pid int) (int, int, kernel.Errno)
	Open(path string) (int, kernel.Errno)
	Creat(path string) (int, kernel.Errno)
	Close(fd int) kernel.Errno
	Read(fd int, b []byte) (int, kernel.Errno)
	Write(fd int, b []byte) (int, kernel.Errno)
	Unlink(path string) kernel.Errno
	Pipe() (int, int, kernel.Errno)
	Socketpair() (int, int, kernel.Errno)
	Select(req *kernel.SelectRequest) (*kernel.SelectResult, kernel.Errno)
	GetPID() int
	GetPPID() int
	Kill(pid, sig int) kernel.Errno
	Sigaction(sig int, h kernel.SignalHandler) kernel.Errno
	SigUsr1() int
}

// bionicLibc adapts bionic.C.
type bionicLibc struct{ c *bionic.C }

func (b bionicLibc) Fork(child func(libc)) int {
	return b.c.Fork(func(cc *bionic.C) { child(bionicLibc{cc}) })
}
func (b bionicLibc) Exit(s int)                             { b.c.Exit(s) }
func (b bionicLibc) Exec(p string, a []string) kernel.Errno { return b.c.Exec(p, a) }
func (b bionicLibc) Wait(pid int) (int, int, kernel.Errno)  { return b.c.Wait(pid) }
func (b bionicLibc) Open(p string) (int, kernel.Errno)      { return b.c.Open(p) }
func (b bionicLibc) Creat(p string) (int, kernel.Errno)     { return b.c.Creat(p) }
func (b bionicLibc) Close(fd int) kernel.Errno              { return b.c.Close(fd) }
func (b bionicLibc) Read(fd int, p []byte) (int, kernel.Errno) {
	return b.c.Read(fd, p)
}
func (b bionicLibc) Write(fd int, p []byte) (int, kernel.Errno) {
	return b.c.Write(fd, p)
}
func (b bionicLibc) Unlink(p string) kernel.Errno   { return b.c.Unlink(p) }
func (b bionicLibc) Pipe() (int, int, kernel.Errno) { return b.c.Pipe() }
func (b bionicLibc) Socketpair() (int, int, kernel.Errno) {
	return b.c.Socketpair()
}
func (b bionicLibc) Select(r *kernel.SelectRequest) (*kernel.SelectResult, kernel.Errno) {
	return b.c.Select(r)
}
func (b bionicLibc) GetPID() int  { return b.c.GetPID() }
func (b bionicLibc) GetPPID() int { return b.c.GetPPID() }
func (b bionicLibc) Kill(pid, sig int) kernel.Errno {
	return b.c.Kill(pid, sig)
}
func (b bionicLibc) Sigaction(sig int, h kernel.SignalHandler) kernel.Errno {
	return b.c.Sigaction(sig, h)
}
func (b bionicLibc) SigUsr1() int { return kernel.SIGUSR1 }

// darwinLibc adapts libsystem.C (XNU signal numbering included).
type darwinLibc struct{ c *libsystem.C }

func (d darwinLibc) Fork(child func(libc)) int {
	return d.c.Fork(func(cc *libsystem.C) { child(darwinLibc{cc}) })
}
func (d darwinLibc) Exit(s int)                             { d.c.Exit(s) }
func (d darwinLibc) Exec(p string, a []string) kernel.Errno { return d.c.Exec(p, a) }
func (d darwinLibc) Wait(pid int) (int, int, kernel.Errno)  { return d.c.Wait(pid) }
func (d darwinLibc) Open(p string) (int, kernel.Errno)      { return d.c.Open(p) }
func (d darwinLibc) Creat(p string) (int, kernel.Errno)     { return d.c.Creat(p) }
func (d darwinLibc) Close(fd int) kernel.Errno              { return d.c.Close(fd) }
func (d darwinLibc) Read(fd int, p []byte) (int, kernel.Errno) {
	return d.c.Read(fd, p)
}
func (d darwinLibc) Write(fd int, p []byte) (int, kernel.Errno) {
	return d.c.Write(fd, p)
}
func (d darwinLibc) Unlink(p string) kernel.Errno   { return d.c.Unlink(p) }
func (d darwinLibc) Pipe() (int, int, kernel.Errno) { return d.c.Pipe() }
func (d darwinLibc) Socketpair() (int, int, kernel.Errno) {
	return d.c.Socketpair()
}
func (d darwinLibc) Select(r *kernel.SelectRequest) (*kernel.SelectResult, kernel.Errno) {
	return d.c.Select(r)
}
func (d darwinLibc) GetPID() int  { return d.c.GetPID() }
func (d darwinLibc) GetPPID() int { return d.c.GetPPID() }
func (d darwinLibc) Kill(pid, sig int) kernel.Errno {
	return d.c.Kill(pid, sig)
}
func (d darwinLibc) Sigaction(sig int, h kernel.SignalHandler) kernel.Errno {
	return d.c.Sigaction(sig, h)
}
func (d darwinLibc) SigUsr1() int { return 30 } // XNU SIGUSR1

// ctx is the environment a test body runs in.
type ctx struct {
	t   *kernel.Thread
	lc  libc
	bin Binary
	sys *core.System
	// helloLinux/helloIOS are the payloads the proc tests exec.
	helloLinux, helloIOS string
	toolchain            *hw.Toolchain
}

// compute charges n operations of class op, through the binary's compiler
// model — the source of the intdiv difference in the basic-ops group.
func (c *ctx) compute(op hw.CPUOp, n int64) {
	cpu := c.sys.Kernel.Device().CPU
	d := cpu.OpTime(op, n)
	c.t.Charge(time.Duration(float64(d) * c.toolchain.OpScale(op)))
}

// Test is one lmbench measurement.
type Test struct {
	// Name matches the Fig. 5 x-axis label.
	Name string
	// Group is the Fig. 5 cluster ("basic", "syscall", "proc", "comm").
	Group string
	// Base names the test whose vanilla-Android latency normalizes this
	// one. Empty means itself; the fork+exec(ios)/fork+sh(ios) tests are
	// impossible on vanilla Android and are normalized against their
	// android variants, as the paper does ("the comparison is
	// intentionally unfair and skews the results against this test").
	Base string
	// run returns the per-operation latency; ok=false means the test
	// could not complete on this configuration (e.g. select(250) on the
	// iPad, fork+exec(ios) on vanilla Android).
	run func(c *ctx) (time.Duration, bool)
}

// BaseName returns the normalization baseline test name.
func (t Test) BaseName() string {
	if t.Base != "" {
		return t.Base
	}
	return t.Name
}

// Result is one (test, configuration) measurement.
type Result struct {
	Test   string
	Group  string
	Config string
	// Latency is the per-operation virtual-time latency.
	Latency time.Duration
	// Failed marks tests that could not complete.
	Failed bool
}

// iters is the default measurement loop count.
const iters = 64

// measure times one operation repeated n times.
func measure(c *ctx, n int, op func()) time.Duration {
	start := c.t.Now()
	for i := 0; i < n; i++ {
		op()
	}
	return (c.t.Now() - start) / time.Duration(n)
}

// Config names used in reports.
const (
	ConfigAndroid      = "android"
	ConfigCiderAndroid = "cider-android"
	ConfigCiderIOS     = "cider-ios"
	ConfigIPad         = "ipad"
)

// Configuration describes one Fig. 5 column.
type Configuration struct {
	Name   string
	System core.Config
	Binary Binary
}

// Configurations returns the four Fig. 5 configurations in paper order.
func Configurations() []Configuration {
	return []Configuration{
		{ConfigAndroid, core.ConfigVanilla, BinaryLinux},
		{ConfigCiderAndroid, core.ConfigCider, BinaryLinux},
		{ConfigCiderIOS, core.ConfigCider, BinaryIOS},
		{ConfigIPad, core.ConfigIPad, BinaryIOS},
	}
}

// Run executes the given tests in one configuration, returning a result
// per test.
func Run(conf Configuration, tests []Test) ([]Result, error) {
	return RunWith(conf, tests, nil)
}

// RunWith is Run with a per-run system hook: onSystem, when non-nil, is
// invoked with the freshly booted System before any benchmark process
// starts. Tests and the CLI use it to attach a trace session to the run;
// it must not advance virtual time. The hook replaces the old package
// global OnSystem, which the parallel engine made a data race — per-run
// state keeps concurrent batteries (and concurrent tests) independent.
func RunWith(conf Configuration, tests []Test, onSystem func(*core.System)) ([]Result, error) {
	sys, err := core.NewSystem(conf.System)
	if err != nil {
		return nil, err
	}
	if onSystem != nil {
		onSystem(sys)
	}
	// Install the hello-world payloads the process-creation tests exec.
	if sys.AndroidFS != nil {
		if err := sys.InstallStaticAndroidBinary("/bin/hello-linux", "lm-hello-linux",
			helloBody); err != nil {
			return nil, err
		}
	}
	if sys.IOSFS != nil {
		if err := sys.InstallIOSBinary("/bin/hello-ios", "lm-hello-ios", nil,
			helloBody); err != nil {
			return nil, err
		}
	}

	results := make([]Result, 0, len(tests))
	driver := func(t *kernel.Thread) {
		c := &ctx{
			t:          t,
			bin:        conf.Binary,
			sys:        sys,
			helloLinux: "/bin/hello-linux",
			helloIOS:   "/bin/hello-ios",
		}
		if conf.Binary == BinaryIOS {
			c.lc = darwinLibc{libsystem.Sys(t)}
			c.toolchain = hw.Xcode421()
		} else {
			c.lc = bionicLibc{bionic.Sys(t)}
			c.toolchain = hw.GCC441()
		}
		for _, test := range tests {
			lat, ok := test.run(c)
			results = append(results, Result{
				Test: test.Name, Group: test.Group, Config: conf.Name,
				Latency: lat, Failed: !ok,
			})
		}
	}
	key := fmt.Sprintf("lmbench-%s", conf.Name)
	var path string
	if conf.Binary == BinaryIOS {
		path = "/bin/lmbench"
		if err := sys.InstallIOSBinary(path, key, nil, wrap(driver)); err != nil {
			return nil, err
		}
	} else {
		path = "/bin/lmbench"
		if err := sys.InstallStaticAndroidBinary(path, key, wrap(driver)); err != nil {
			return nil, err
		}
	}
	if _, err := sys.Start(path, nil); err != nil {
		return nil, err
	}
	if err := sys.Run(); err != nil {
		return nil, err
	}
	return results, nil
}
