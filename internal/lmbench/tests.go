package lmbench

import (
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/prog"
)

// wrap turns a driver body into a program entry.
func wrap(body func(t *kernel.Thread)) prog.Func {
	return func(c *prog.Call) uint64 {
		body(c.Ctx.(*kernel.Thread))
		return 0
	}
}

// helloBody is the "hello world" payload of the exec tests.
func helloBody(c *prog.Call) uint64 {
	th := c.Ctx.(*kernel.Thread)
	// printf("hello world\n") worth of work.
	th.Charge(th.Kernel().Device().CPU.Cycles(5200))
	return 0
}

// AllTests returns the full Fig. 5 test battery in figure order.
func AllTests() []Test {
	return []Test{
		// ---- Basic CPU operations -------------------------------------
		basicOp("int mul", hw.OpIntMul),
		basicOp("int div", hw.OpIntDiv),
		basicOp("double add", hw.OpFloatAdd),
		basicOp("double mul", hw.OpFloatMul),
		{Name: "double bogomflops", Group: "basic", run: func(c *ctx) (time.Duration, bool) {
			// lmbench's bogomflops kernel: a[i] = a[i] * b[i] + c per
			// element, memory resident.
			const n = 10000
			lat := measure(c, 4, func() {
				c.compute(hw.OpLoad, 2*n)
				c.compute(hw.OpFloatMul, n)
				c.compute(hw.OpFloatAdd, n)
				c.compute(hw.OpStore, n)
			})
			return lat / n, true
		}},

		// ---- Syscalls and signals -------------------------------------
		{Name: "null syscall", Group: "syscall", run: func(c *ctx) (time.Duration, bool) {
			return measure(c, 256, func() { c.lc.GetPPID() }), true
		}},
		{Name: "read", Group: "syscall", run: func(c *ctx) (time.Duration, bool) {
			fd, errno := c.lc.Open("/dev/zero")
			if errno != kernel.OK {
				return 0, false
			}
			buf := make([]byte, 1)
			lat := measure(c, iters, func() { c.lc.Read(fd, buf) })
			c.lc.Close(fd)
			return lat, true
		}},
		{Name: "write", Group: "syscall", run: func(c *ctx) (time.Duration, bool) {
			fd, errno := c.lc.Open("/dev/null")
			if errno != kernel.OK {
				return 0, false
			}
			one := []byte{0}
			lat := measure(c, iters, func() { c.lc.Write(fd, one) })
			c.lc.Close(fd)
			return lat, true
		}},
		{Name: "open/close", Group: "syscall", run: func(c *ctx) (time.Duration, bool) {
			if fd, errno := c.lc.Creat("/tmp/lmbench.f"); errno == kernel.OK {
				c.lc.Close(fd)
			} else {
				return 0, false
			}
			lat := measure(c, iters, func() {
				fd, _ := c.lc.Open("/tmp/lmbench.f")
				c.lc.Close(fd)
			})
			c.lc.Unlink("/tmp/lmbench.f")
			return lat, true
		}},
		{Name: "signal handler", Group: "syscall", run: func(c *ctx) (time.Duration, bool) {
			fired := 0
			if errno := c.lc.Sigaction(c.lc.SigUsr1(), func(*kernel.Thread, int) { fired++ }); errno != kernel.OK {
				return 0, false
			}
			pid := c.lc.GetPID()
			lat := measure(c, iters, func() { c.lc.Kill(pid, c.lc.SigUsr1()) })
			if fired == 0 {
				return 0, false
			}
			return lat, true
		}},

		// ---- Process creation -----------------------------------------
		{Name: "fork+exit", Group: "proc", run: func(c *ctx) (time.Duration, bool) {
			return measure(c, 8, func() {
				pid := c.lc.Fork(func(cc libc) { cc.Exit(0) })
				c.lc.Wait(pid)
			}), true
		}},
		forkExec("fork+exec(android)", "", func(c *ctx) string { return c.helloLinux }),
		forkExec("fork+exec(ios)", "fork+exec(android)", func(c *ctx) string { return c.helloIOS }),
		forkSh("fork+sh(android)", "", "/system/bin/sh", func(c *ctx) string { return c.helloLinux }),
		forkSh("fork+sh(ios)", "fork+sh(android)", "/bin/sh", func(c *ctx) string { return c.helloIOS }),

		// ---- Local communication and file operations ------------------
		{Name: "pipe", Group: "comm", run: func(c *ctx) (time.Duration, bool) {
			return pingPong(c, false)
		}},
		{Name: "AF_UNIX", Group: "comm", run: func(c *ctx) (time.Duration, bool) {
			return pingPong(c, true)
		}},
		selectN("select 10", 10),
		selectN("select 100", 100),
		selectN("select 250", 250),
		fileTest("0KB create", 0, false),
		fileTest("0KB delete", 0, true),
		fileTest("10KB create", 10<<10, false),
		fileTest("10KB delete", 10<<10, true),
	}
}

func basicOp(name string, op hw.CPUOp) Test {
	return Test{Name: name, Group: "basic", run: func(c *ctx) (time.Duration, bool) {
		const n = 50000
		lat := measure(c, 4, func() { c.compute(op, n) })
		return lat / n, true
	}}
}

func forkExec(name, base string, target func(c *ctx) string) Test {
	return Test{Name: name, Group: "proc", Base: base, run: func(c *ctx) (time.Duration, bool) {
		path := target(c)
		ok := true
		lat := measure(c, 8, func() {
			pid := c.lc.Fork(func(cc libc) {
				cc.Exec(path, nil)
				cc.Exit(127)
			})
			_, status, _ := c.lc.Wait(pid)
			if status != 0 {
				ok = false
			}
		})
		return lat, ok
	}}
}

// forkSh launches the named shell to run the target binary: the (android)
// variant uses the Android shell and Linux payload, the (ios) variant the
// iOS shell and Mach-O payload, whichever binary drives the test.
func forkSh(name, base, sh string, target func(c *ctx) string) Test {
	return Test{Name: name, Group: "proc", Base: base, run: func(c *ctx) (time.Duration, bool) {
		path := target(c)
		ok := true
		lat := measure(c, 4, func() {
			pid := c.lc.Fork(func(cc libc) {
				cc.Exec(sh, []string{"-c", path})
				cc.Exit(127)
			})
			_, status, _ := c.lc.Wait(pid)
			if status != 0 {
				ok = false
			}
		})
		return lat, ok
	}}
}

// pingPong measures one-way latency through a pipe or AF_UNIX socket:
// lmbench's lat_pipe / lat_unix "hot potato" between two processes. Like
// the real lat_pipe, every transfer is checked and a failed syscall
// aborts the measurement: silently dropping one leg of the ping-pong
// (an injected EINTR or EAGAIN under the soak's fault schedules) would
// otherwise park both processes forever. On abort the parent still
// closes its write end so the child sees EOF and exits.
func pingPong(c *ctx, unix bool) (time.Duration, bool) {
	const rounds = 32
	one := []byte{1}
	buf := make([]byte, 1)
	if unix {
		a, b, errno := c.lc.Socketpair()
		if errno != kernel.OK {
			return 0, false
		}
		pid := c.lc.Fork(func(cc libc) {
			cc.Close(a) // drop the inherited far end
			bb := make([]byte, 1)
			for {
				n, e := cc.Read(b, bb)
				if n == 0 {
					cc.Exit(0)
				}
				if n < 0 || e != kernel.OK {
					cc.Exit(1)
				}
				if n, e = cc.Write(b, bb); n != 1 || e != kernel.OK {
					cc.Exit(1)
				}
			}
		})
		c.lc.Close(b)
		ok := true
		start := c.t.Now()
		for i := 0; i < rounds; i++ {
			if n, e := c.lc.Write(a, one); n != 1 || e != kernel.OK {
				ok = false
				break
			}
			if n, e := c.lc.Read(a, buf); n != 1 || e != kernel.OK {
				ok = false
				break
			}
		}
		rtt := (c.t.Now() - start) / rounds
		c.lc.Close(a)
		c.lc.Wait(pid)
		return rtt / 2, ok
	}
	// Pipes are unidirectional: one per direction.
	r1, w1, errno := c.lc.Pipe()
	if errno != kernel.OK {
		return 0, false
	}
	r2, w2, errno := c.lc.Pipe()
	if errno != kernel.OK {
		return 0, false
	}
	pid := c.lc.Fork(func(cc libc) {
		// Close the inherited ends the child does not use, so EOF works.
		cc.Close(w1)
		cc.Close(r2)
		b := make([]byte, 1)
		for {
			n, e := cc.Read(r1, b)
			if n == 0 {
				cc.Exit(0)
			}
			if n < 0 || e != kernel.OK {
				cc.Exit(1)
			}
			if n, e = cc.Write(w2, b); n != 1 || e != kernel.OK {
				cc.Exit(1)
			}
		}
	})
	c.lc.Close(r1)
	c.lc.Close(w2)
	ok := true
	start := c.t.Now()
	for i := 0; i < rounds; i++ {
		if n, e := c.lc.Write(w1, one); n != 1 || e != kernel.OK {
			ok = false
			break
		}
		if n, e := c.lc.Read(r2, buf); n != 1 || e != kernel.OK {
			ok = false
			break
		}
	}
	rtt := (c.t.Now() - start) / rounds
	c.lc.Close(w1)
	c.lc.Wait(pid)
	return rtt / 2, ok
}

func selectN(name string, n int) Test {
	return Test{Name: name, Group: "comm", run: func(c *ctx) (time.Duration, bool) {
		fds := make([]int, 0, n)
		for i := 0; i < n; i++ {
			fd, errno := c.lc.Open("/dev/zero")
			if errno != kernel.OK {
				return 0, false
			}
			fds = append(fds, fd)
		}
		ok := true
		lat := measure(c, iters, func() {
			if _, errno := c.lc.Select(&kernel.SelectRequest{ReadFDs: fds, Timeout: 0}); errno != kernel.OK {
				ok = false
			}
		})
		for _, fd := range fds {
			c.lc.Close(fd)
		}
		if !ok {
			// "The test simply failed to complete for 250 file
			// descriptors" on the iPad.
			return 0, false
		}
		return lat, true
	}}
}

func fileTest(name string, size int, del bool) Test {
	return Test{Name: name, Group: "comm", run: func(c *ctx) (time.Duration, bool) {
		payload := make([]byte, size)
		ok := true
		var lat time.Duration
		if del {
			// Time only the unlink; the create between samples is setup.
			var total time.Duration
			for i := 0; i < iters; i++ {
				fd, errno := c.lc.Creat("/tmp/lm.tmp")
				if errno != kernel.OK {
					return 0, false
				}
				if size > 0 {
					c.lc.Write(fd, payload)
				}
				c.lc.Close(fd)
				start := c.t.Now()
				c.lc.Unlink("/tmp/lm.tmp")
				total += c.t.Now() - start
			}
			lat = total / iters
		} else {
			lat = measure(c, iters, func() {
				fd, errno := c.lc.Creat("/tmp/lm.tmp")
				if errno != kernel.OK {
					ok = false
					return
				}
				if size > 0 {
					c.lc.Write(fd, payload)
				}
				c.lc.Close(fd)
			})
			c.lc.Unlink("/tmp/lm.tmp")
		}
		return lat, ok
	}}
}
