package lmbench

import (
	"fmt"
	"strings"
	"time"
)

// Report aggregates Fig. 5: per-test latencies for every configuration,
// with normalization against vanilla Android.
type Report struct {
	// Tests in figure order.
	Tests []Test
	// Latency[test][config] is the measured per-op latency.
	Latency map[string]map[string]time.Duration
	// Failed[test][config] marks tests that could not complete.
	Failed map[string]map[string]bool
}

// RunFigure5 runs the full battery on all four configurations.
func RunFigure5() (*Report, error) {
	return RunFigure5Tests(AllTests())
}

// RunFigure5Tests runs a chosen subset on all four configurations.
func RunFigure5Tests(tests []Test) (*Report, error) {
	rep := &Report{
		Tests:   tests,
		Latency: map[string]map[string]time.Duration{},
		Failed:  map[string]map[string]bool{},
	}
	for _, conf := range Configurations() {
		results, err := Run(conf, tests)
		if err != nil {
			return nil, fmt.Errorf("lmbench: %s: %w", conf.Name, err)
		}
		for _, r := range results {
			if rep.Latency[r.Test] == nil {
				rep.Latency[r.Test] = map[string]time.Duration{}
				rep.Failed[r.Test] = map[string]bool{}
			}
			rep.Latency[r.Test][conf.Name] = r.Latency
			rep.Failed[r.Test][conf.Name] = r.Failed
		}
	}
	return rep, nil
}

// baseName resolves a test's normalization baseline.
func (r *Report) baseName(test string) string {
	for _, t := range r.Tests {
		if t.Name == test {
			return t.BaseName()
		}
	}
	return test
}

// Normalized returns test latency in config relative to the baseline
// test's vanilla-Android latency (the Fig. 5 y-axis; lower is better).
// ok is false when either side failed.
func (r *Report) Normalized(test, config string) (float64, bool) {
	baseTest := r.baseName(test)
	base := r.Latency[baseTest][ConfigAndroid]
	lat, have := r.Latency[test][config]
	if !have || base == 0 || r.Failed[baseTest][ConfigAndroid] || r.Failed[test][config] {
		return 0, false
	}
	return float64(lat) / float64(base), true
}

// Render produces the Fig. 5 table: one row per test, normalized columns
// plus the absolute vanilla latency for scale.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: lmbench latencies normalized to vanilla Android (lower is better)\n")
	fmt.Fprintf(&b, "%-22s %-7s | %14s %14s %14s %14s\n",
		"test", "group", ConfigAndroid+"(abs)", ConfigCiderAndroid, ConfigCiderIOS, ConfigIPad)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 98))
	group := ""
	for _, t := range r.Tests {
		if t.Group != group {
			group = t.Group
			fmt.Fprintf(&b, "· %s\n", groupTitle(group))
		}
		base := r.Latency[t.Name][ConfigAndroid]
		if r.Failed[t.Name][ConfigAndroid] {
			base = 0
		}
		fmt.Fprintf(&b, "%-22s %-7s | %14s", t.Name, t.Group, fmtDur(base))
		for _, cfg := range []string{ConfigCiderAndroid, ConfigCiderIOS, ConfigIPad} {
			if norm, ok := r.Normalized(t.Name, cfg); ok {
				fmt.Fprintf(&b, " %13.2fx", norm)
			} else {
				fmt.Fprintf(&b, " %14s", "n/a")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func groupTitle(g string) string {
	switch g {
	case "basic":
		return "basic CPU operations"
	case "syscall":
		return "syscalls and signals"
	case "proc":
		return "process creation"
	case "comm":
		return "local communication and file operations"
	}
	return g
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "n/a"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	}
}
