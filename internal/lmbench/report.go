package lmbench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/runner"
)

// Report aggregates Fig. 5: per-test latencies for every configuration,
// with normalization against vanilla Android.
type Report struct {
	// Tests in figure order.
	Tests []Test
	// Latency[test][config] is the measured per-op latency.
	Latency map[string]map[string]time.Duration
	// Failed[test][config] marks tests that could not complete.
	Failed map[string]map[string]bool
}

// Cell identifies one parallel experiment cell: a single (configuration,
// test) pair run on its own freshly booted System. Index is the cell's
// canonical position (configurations in paper order, tests in battery
// order within each configuration) — the merge key that makes parallel
// output bit-identical to sequential.
type Cell struct {
	Index  int
	Config Configuration
	Test   Test
}

// Options configures a battery run.
type Options struct {
	// Jobs caps the host workers cells are sharded across; <= 0 means
	// GOMAXPROCS. Jobs=1 runs cells sequentially on the caller's
	// goroutine (the reference execution).
	Jobs int
	// OnSystem, when non-nil, is invoked with each cell's freshly booted
	// System before its benchmark process starts — the place to attach a
	// trace session. With Jobs > 1 it is called concurrently from worker
	// goroutines, so implementations must either be thread-safe or write
	// only to state indexed by the cell (e.g. sessions[cell.Index] in a
	// pre-sized slice). It must not advance virtual time.
	OnSystem func(Cell, *core.System)
}

// RunFigure5 runs the full battery on all four configurations across
// GOMAXPROCS host workers.
func RunFigure5() (*Report, error) {
	return RunFigure5Tests(AllTests())
}

// RunFigure5Tests runs a chosen subset on all four configurations across
// GOMAXPROCS host workers.
func RunFigure5Tests(tests []Test) (*Report, error) {
	return RunFigure5Opts(tests, Options{})
}

// Cells enumerates the battery's parallel cells in canonical order: one
// per (configuration, test). lmbench cells can be this fine-grained
// because every test boots from the same cold-start System state; see
// passmark, where warm GPU state forces per-configuration cells.
func Cells(tests []Test) []Cell {
	confs := Configurations()
	cells := make([]Cell, 0, len(confs)*len(tests))
	for _, conf := range confs {
		for _, t := range tests {
			cells = append(cells, Cell{Index: len(cells), Config: conf, Test: t})
		}
	}
	return cells
}

// RunFigure5Opts runs a chosen subset on all four configurations, sharding
// (configuration, test) cells across opts.Jobs host workers. Each cell is
// an independent System with its own virtual clock, so the merged report
// is bit-identical for every Jobs value; only wall-clock time changes. On
// cell failure every other cell still runs and the error from the lowest-
// index cell is returned.
func RunFigure5Opts(tests []Test, opts Options) (*Report, error) {
	cells := Cells(tests)
	outs, err := runner.Map(len(cells), opts.Jobs, func(i int) ([]Result, error) {
		cell := cells[i]
		var hook func(*core.System)
		if opts.OnSystem != nil {
			hook = func(sys *core.System) { opts.OnSystem(cell, sys) }
		}
		rs, rerr := RunWith(cell.Config, []Test{cell.Test}, hook)
		if rerr != nil {
			return nil, fmt.Errorf("lmbench: %s: %w", cell.Config.Name, rerr)
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Tests:   tests,
		Latency: map[string]map[string]time.Duration{},
		Failed:  map[string]map[string]bool{},
	}
	for _, rs := range outs {
		for _, r := range rs {
			if rep.Latency[r.Test] == nil {
				rep.Latency[r.Test] = map[string]time.Duration{}
				rep.Failed[r.Test] = map[string]bool{}
			}
			rep.Latency[r.Test][r.Config] = r.Latency
			rep.Failed[r.Test][r.Config] = r.Failed
		}
	}
	return rep, nil
}

// baseName resolves a test's normalization baseline.
func (r *Report) baseName(test string) string {
	for _, t := range r.Tests {
		if t.Name == test {
			return t.BaseName()
		}
	}
	return test
}

// Normalized returns test latency in config relative to the baseline
// test's vanilla-Android latency (the Fig. 5 y-axis; lower is better).
// ok is false when either side failed.
func (r *Report) Normalized(test, config string) (float64, bool) {
	baseTest := r.baseName(test)
	base := r.Latency[baseTest][ConfigAndroid]
	lat, have := r.Latency[test][config]
	if !have || base == 0 || r.Failed[baseTest][ConfigAndroid] || r.Failed[test][config] {
		return 0, false
	}
	return float64(lat) / float64(base), true
}

// Render produces the Fig. 5 table: one row per test, normalized columns
// plus the absolute vanilla latency for scale.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: lmbench latencies normalized to vanilla Android (lower is better)\n")
	fmt.Fprintf(&b, "%-22s %-7s | %14s %14s %14s %14s\n",
		"test", "group", ConfigAndroid+"(abs)", ConfigCiderAndroid, ConfigCiderIOS, ConfigIPad)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 98))
	group := ""
	for _, t := range r.Tests {
		if t.Group != group {
			group = t.Group
			fmt.Fprintf(&b, "· %s\n", groupTitle(group))
		}
		base := r.Latency[t.Name][ConfigAndroid]
		if r.Failed[t.Name][ConfigAndroid] {
			base = 0
		}
		fmt.Fprintf(&b, "%-22s %-7s | %14s", t.Name, t.Group, fmtDur(base))
		for _, cfg := range []string{ConfigCiderAndroid, ConfigCiderIOS, ConfigIPad} {
			if norm, ok := r.Normalized(t.Name, cfg); ok {
				fmt.Fprintf(&b, " %13.2fx", norm)
			} else {
				fmt.Fprintf(&b, " %14s", "n/a")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func groupTitle(g string) string {
	switch g {
	case "basic":
		return "basic CPU operations"
	case "syscall":
		return "syscalls and signals"
	case "proc":
		return "process creation"
	case "comm":
		return "local communication and file operations"
	}
	return g
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "n/a"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	}
}
