package lmbench

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// TestPerRunHookIsolation is the regression test for the old package-level
// OnSystem global: two batteries running concurrently with different
// hooks must each see exactly their own systems. With a shared global,
// one run's hook would fire for the other run's systems (and -race would
// flag the concurrent writes).
func TestPerRunHookIsolation(t *testing.T) {
	var syscallTests []Test
	for _, tt := range AllTests() {
		if tt.Name == "null syscall" {
			syscallTests = append(syscallTests, tt)
		}
	}
	conf := Configurations()[0]

	var wg sync.WaitGroup
	counts := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := RunWith(conf, syscallTests, func(sys *core.System) {
				counts[i]++
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	for i, n := range counts {
		if n != 1 {
			t.Errorf("run %d: hook fired %d times, want exactly 1", i, n)
		}
	}
}

// TestParallelCellsMatchBatch pins the sharding granularity choice: a
// test run in its own single-test cell must measure exactly the latency
// it measures inside the full sequential battery — lmbench tests start
// from cold System state, so per-(config, test) cells are safe. (The
// passmark 3D tests fail this property, which is why passmark shards per
// configuration; see passmark.Cell.)
func TestParallelCellsMatchBatch(t *testing.T) {
	tests := AllTests()[:6]     // basic group + first syscalls: enough to cross groups
	conf := Configurations()[2] // cider-ios: the config with the most machinery
	batch, err := Run(conf, tests)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range tests {
		solo, err := Run(conf, []Test{tt})
		if err != nil {
			t.Fatal(err)
		}
		if solo[0].Latency != batch[i].Latency || solo[0].Failed != batch[i].Failed {
			t.Errorf("%s: solo cell %v (failed=%v) != batch %v (failed=%v)",
				tt.Name, solo[0].Latency, solo[0].Failed, batch[i].Latency, batch[i].Failed)
		}
	}
}
