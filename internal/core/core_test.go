package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bionic"
	"repro/internal/dyld"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/macho"
	"repro/internal/persona"
	"repro/internal/prog"
)

func TestIOSDylibCountMatchesPaper(t *testing.T) {
	libs := IOSDylibs()
	if len(libs) != 115 {
		t.Fatalf("base library set = %d images, want 115 (Section 6.2)", len(libs))
	}
	seen := map[string]bool{}
	for _, l := range libs {
		if seen[l] {
			t.Fatalf("duplicate install name %s", l)
		}
		seen[l] = true
	}
}

func TestVanillaRunsAndroidBinary(t *testing.T) {
	sys, err := NewSystem(ConfigVanilla)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := sys.InstallStaticAndroidBinary("/system/bin/hello", "hello", func(c *prog.Call) uint64 {
		ran = true
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Start("/system/bin/hello", nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("binary did not run")
	}
}

func TestVanillaRunsDynamicBinary(t *testing.T) {
	sys, err := NewSystem(ConfigVanilla)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := sys.InstallAndroidBinary("/system/bin/dyn", "dyn", []string{"libc.so", "libutils.so"}, func(c *prog.Call) uint64 {
		ran = true
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	sys.Start("/system/bin/dyn", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("dynamic binary did not run (linker failed)")
	}
}

func TestVanillaRejectsIOSBinary(t *testing.T) {
	sys, err := NewSystem(ConfigVanilla)
	if err != nil {
		t.Fatal(err)
	}
	// Manually write a Mach-O into the Android FS.
	bin, _ := prog.MachOExecutable("iosapp", []string{LibSystemPath}, nil)
	sys.AndroidFS.WriteFile("/data/app/iosapp", bin)
	tk, _ := sys.Start("/data/app/iosapp", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	_ = tk // exec fails (status 255): vanilla Android has no Mach-O loader
}

func TestCiderRunsIOSBinary(t *testing.T) {
	sys, err := NewSystem(ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	var personaSeen persona.Kind
	var images int
	if err := sys.InstallIOSBinary("/Applications/hello.app/hello", "ios-hello", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		personaSeen = th.Persona.Current()
		if im, ok := dyld.ImagesFor(th.Task()); ok {
			images = im.Count()
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	sys.Start("/Applications/hello.app/hello", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if personaSeen != persona.IOS {
		t.Fatalf("persona = %v, want ios (Mach-O loader must tag the thread)", personaSeen)
	}
	if images != 115 {
		t.Fatalf("dyld loaded %d images, want 115", images)
	}
}

func TestCiderIOSProcessFootprint(t *testing.T) {
	sys, err := NewSystem(ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	var mapped uint64
	sys.InstallIOSBinary("/bin/foot", "foot", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		mapped = th.Task().Mem().MappedBytes()
		return 0
	})
	sys.Start("/bin/foot", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// ~115 dylibs x 800 KB ≈ 90 MB of library mappings (Section 6.2).
	if mapped < 85<<20 || mapped > 100<<20 {
		t.Fatalf("mapped = %d MB, want ≈90 MB", mapped>>20)
	}
}

func TestCiderRunsBothBinaries(t *testing.T) {
	sys, err := NewSystem(ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	var androidRan, iosRan bool
	sys.InstallStaticAndroidBinary("/system/bin/a", "a", func(c *prog.Call) uint64 {
		androidRan = true
		return 0
	})
	sys.InstallIOSBinary("/bin/i", "i", nil, func(c *prog.Call) uint64 {
		iosRan = true
		return 0
	})
	sys.Start("/system/bin/a", nil)
	sys.Start("/bin/i", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !androidRan || !iosRan {
		t.Fatalf("android=%v ios=%v — Cider must run both side by side", androidRan, iosRan)
	}
}

func TestCiderOverlayPaths(t *testing.T) {
	sys, err := NewSystem(ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	// iOS paths resolve through the overlay...
	if _, err := sys.Kernel.Root().Lookup(LibSystemPath); err != nil {
		t.Fatalf("iOS path not visible: %v", err)
	}
	// ...and Android paths still resolve underneath.
	if _, err := sys.Kernel.Root().Lookup("/system/lib/libGLESv2.so"); err != nil {
		t.Fatalf("Android path not visible: %v", err)
	}
}

func TestIPadRunsIOSBinaryWithSharedCache(t *testing.T) {
	sys, err := NewSystem(ConfigIPad)
	if err != nil {
		t.Fatal(err)
	}
	var images int
	var submap bool
	sys.InstallIOSBinary("/Applications/x.app/x", "x", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		im, _ := dyld.ImagesFor(th.Task())
		images = im.Count()
		for _, r := range th.Task().Mem().Regions() {
			if r.Name == "dyld_shared_cache" && r.Submap {
				submap = true
			}
		}
		return 0
	})
	sys.Start("/Applications/x.app/x", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if images != 115 {
		t.Fatalf("cache provided %d images, want 115", images)
	}
	if !submap {
		t.Fatal("shared cache must be a submap region")
	}
}

func TestIPadRejectsELF(t *testing.T) {
	sys, err := NewSystem(ConfigIPad)
	if err != nil {
		t.Fatal(err)
	}
	bin, _ := prog.StaticELF("elf-on-ipad")
	sys.IOSFS.WriteFile("/bin/elfbin", bin)
	sys.Start("/bin/elfbin", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// Exec fails (no ELF loader); nothing to assert beyond clean shutdown.
}

func TestForkLatencyShape(t *testing.T) {
	// The headline §6.2 result: fork+exit for an iOS binary on Cider is
	// ~14x the Linux binary (245 µs -> 3.75 ms), driven by PTE copies and
	// atfork/atexit handlers; on the iPad the shared cache makes it much
	// cheaper than Cider-iOS.
	forkExit := func(cfg Config, ios bool) time.Duration {
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var elapsed time.Duration
		body := func(c *prog.Call) uint64 {
			th := c.Ctx.(*kernel.Thread)
			if ios {
				lc := libsystem.Sys(th)
				start := th.Now()
				pid := lc.Fork(func(cc *libsystem.C) { cc.Exit(0) })
				lc.Wait(pid)
				elapsed = th.Now() - start
			} else {
				lc := bionic.Sys(th)
				start := th.Now()
				pid := lc.Fork(func(cc *bionic.C) { cc.Exit(0) })
				lc.Wait(pid)
				elapsed = th.Now() - start
			}
			return 0
		}
		if ios {
			sys.InstallIOSBinary("/bin/fx", "fx", nil, body)
			sys.Start("/bin/fx", nil)
		} else {
			sys.InstallStaticAndroidBinary("/bin/fx", "fx", body)
			sys.Start("/bin/fx", nil)
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	linux := forkExit(ConfigVanilla, false)
	ciderIOS := forkExit(ConfigCider, true)
	ipad := forkExit(ConfigIPad, true)

	// Absolute anchors: ~245 µs and ~3.75 ms (§6.2), within 25%.
	if linux < 180*time.Microsecond || linux > 320*time.Microsecond {
		t.Errorf("linux fork+exit = %v, want ≈245 µs", linux)
	}
	if ciderIOS < 2800*time.Microsecond || ciderIOS > 4700*time.Microsecond {
		t.Errorf("cider-ios fork+exit = %v, want ≈3.75 ms", ciderIOS)
	}
	ratio := float64(ciderIOS) / float64(linux)
	if ratio < 10 || ratio > 18 {
		t.Errorf("cider-ios / linux = %.1fx, want ≈14x", ratio)
	}
	// "the fork+exit measurement on the iPad mini is significantly faster
	// than using Cider on the Android device".
	if ipad >= ciderIOS {
		t.Errorf("ipad fork+exit (%v) should beat cider-ios (%v)", ipad, ciderIOS)
	}
}

func TestForkExecShape(t *testing.T) {
	// fork+exec(android) with a Linux test binary ≈ 590 µs (§6.2).
	sys, err := NewSystem(ConfigVanilla)
	if err != nil {
		t.Fatal(err)
	}
	sys.InstallStaticAndroidBinary("/bin/hello", "hello", func(c *prog.Call) uint64 { return 0 })
	var elapsed time.Duration
	sys.InstallStaticAndroidBinary("/bin/fe", "fe", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		lc := bionic.Sys(th)
		start := th.Now()
		pid := lc.Fork(func(cc *bionic.C) {
			cc.Exec("/bin/hello", nil)
			cc.Exit(127)
		})
		lc.Wait(pid)
		elapsed = th.Now() - start
		return 0
	})
	sys.Start("/bin/fe", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < 450*time.Microsecond || elapsed > 750*time.Microsecond {
		t.Fatalf("fork+exec(android) = %v, want ≈590 µs", elapsed)
	}
}

func TestShellRuns(t *testing.T) {
	sys, err := NewSystem(ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	helloRan := false
	sys.InstallStaticAndroidBinary("/bin/hello", "hello", func(c *prog.Call) uint64 {
		helloRan = true
		return 7
	})
	var status int
	sys.InstallStaticAndroidBinary("/bin/driver", "driver", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		lc := bionic.Sys(th)
		pid := lc.Fork(func(cc *bionic.C) {
			cc.Exec("/system/bin/sh", []string{"-c", "/bin/hello"})
			cc.Exit(127)
		})
		_, status, _ = lc.Wait(pid)
		return 0
	})
	sys.Start("/bin/driver", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !helloRan {
		t.Fatal("sh did not run the command")
	}
	if status != 7 {
		t.Fatalf("status = %d, want 7 (propagated through sh)", status)
	}
}

func TestIOSShellRunsIOSBinary(t *testing.T) {
	sys, err := NewSystem(ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	sys.InstallIOSBinary("/bin/ioshello", "ioshello", nil, func(c *prog.Call) uint64 {
		ran = true
		return 0
	})
	sys.InstallIOSBinary("/bin/iosdriver", "iosdriver", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		lc := libsystem.Sys(th)
		pid := lc.Fork(func(cc *libsystem.C) {
			cc.Exec("/bin/sh", []string{"-c", "/bin/ioshello"})
			cc.Exit(127)
		})
		lc.Wait(pid)
		return 0
	})
	sys.Start("/bin/iosdriver", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("iOS sh did not run the iOS binary")
	}
}

func TestAblationSharedCacheOnCider(t *testing.T) {
	// Enabling the shared cache on Cider (the paper's future work) should
	// bring iOS fork latency down sharply.
	run := func(cache bool) time.Duration {
		sys, err := NewSystem(ConfigCider, Options{SharedCache: &cache})
		if err != nil {
			t.Fatal(err)
		}
		var elapsed time.Duration
		sys.InstallIOSBinary("/bin/f", "f", nil, func(c *prog.Call) uint64 {
			th := c.Ctx.(*kernel.Thread)
			lc := libsystem.Sys(th)
			start := th.Now()
			pid := lc.Fork(func(cc *libsystem.C) { cc.Exit(0) })
			lc.Wait(pid)
			elapsed = th.Now() - start
			return 0
		})
		sys.Start("/bin/f", nil)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	off := run(false)
	on := run(true)
	if on >= off/2 {
		t.Fatalf("shared cache fork %v !<< no-cache fork %v", on, off)
	}
}

func TestEncryptedBinaryRejected(t *testing.T) {
	sys, err := NewSystem(ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	bin, _ := prog.MachOExecutable("enc", []string{LibSystemPath}, nil)
	// Re-parse and mark encrypted.
	// (The ipa package provides the real encryption pipeline; here we only
	// need the loader's EACCES behaviour.)
	f, perr := macho.Parse(bin)
	if perr != nil {
		t.Fatal(perr)
	}
	f.Encryption = &macho.EncryptionInfo{CryptOff: 4096, CryptSize: 8192, CryptID: 1}
	enc, _ := f.Marshal()
	sys.IOSFS.WriteFile("/Applications/enc.app/enc", enc)
	sys.Registry.MustRegister("enc", func(c *prog.Call) uint64 {
		t.Error("encrypted binary must not run")
		return 0
	})
	sys.Start("/Applications/enc.app/enc", nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSystemDeterminism: two identical boots produce byte-identical
// virtual-time results — the property that makes every figure reproducible.
func TestSystemDeterminism(t *testing.T) {
	run := func() (time.Duration, uint64) {
		sys, err := NewSystem(ConfigCider)
		if err != nil {
			t.Fatal(err)
		}
		var elapsed time.Duration
		sys.InstallIOSBinary("/bin/d", "det", nil, func(c *prog.Call) uint64 {
			th := c.Ctx.(*kernel.Thread)
			lc := libsystem.Sys(th)
			start := th.Now()
			pid := lc.Fork(func(cc *libsystem.C) { cc.Exit(0) })
			lc.Wait(pid)
			r, w, _ := lc.Pipe()
			lc.Write(w, []byte("abc"))
			buf := make([]byte, 3)
			lc.Read(r, buf)
			elapsed = th.Now() - start
			return 0
		})
		sys.Start("/bin/d", nil)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		sent, _ := sys.IPC.Stats()
		return elapsed, sent
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("non-deterministic: %v/%d vs %v/%d", e1, s1, e2, s2)
	}
}

// TestManyAppsStress boots Cider and runs 12 iOS apps and 12 Android
// binaries concurrently, each forking children and moving data through
// pipes — a scheduler and kernel soak: everything must complete and the
// per-process results must be correct.
func TestManyAppsStress(t *testing.T) {
	sys, err := NewSystem(ConfigCider)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	iosOK := make([]bool, n)
	androidOK := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		path := fmt.Sprintf("/Applications/s%d.app/s%d", i, i)
		if err := sys.InstallIOSBinary(path, fmt.Sprintf("stress-ios-%d", i), nil, func(c *prog.Call) uint64 {
			th := c.Ctx.(*kernel.Thread)
			lc := libsystem.Sys(th)
			r, w, _ := lc.Pipe()
			pid := lc.Fork(func(cc *libsystem.C) {
				cc.Write(w, []byte{byte(i)})
				cc.Exit(0)
			})
			buf := make([]byte, 1)
			lc.Read(r, buf)
			lc.Wait(pid)
			iosOK[i] = buf[0] == byte(i)
			return 0
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Start(path, nil); err != nil {
			t.Fatal(err)
		}

		apath := fmt.Sprintf("/system/bin/s%d", i)
		if err := sys.InstallStaticAndroidBinary(apath, fmt.Sprintf("stress-android-%d", i), func(c *prog.Call) uint64 {
			th := c.Ctx.(*kernel.Thread)
			lc := bionic.Sys(th)
			a, b, _ := lc.Socketpair()
			pid := lc.Fork(func(cc *bionic.C) {
				buf := make([]byte, 4)
				nn, _ := cc.Read(b, buf)
				cc.Write(b, buf[:nn])
				cc.Exit(0)
			})
			lc.Write(a, []byte{byte(i), 1, 2, 3})
			buf := make([]byte, 4)
			lc.Read(a, buf)
			lc.Close(a)
			lc.Wait(pid)
			androidOK[i] = buf[0] == byte(i)
			return 0
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Start(apath, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !iosOK[i] {
			t.Errorf("iOS app %d failed", i)
		}
		if !androidOK[i] {
			t.Errorf("Android app %d failed", i)
		}
	}
	if sys.Kernel.Tasks() != 0 {
		t.Errorf("%d tasks leaked (unreaped)", sys.Kernel.Tasks())
	}
}
