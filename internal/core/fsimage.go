package core

import (
	"fmt"

	"repro/internal/bionic"
	"repro/internal/devices"
	"repro/internal/graphics"
	"repro/internal/libsystem"
	"repro/internal/prog"
	"repro/internal/vfs"
)

// LibSystemPath is the root iOS library every binary links.
const LibSystemPath = "/usr/lib/libSystem.B.dylib"

// UIKitPath is the iOS user-interface framework binary.
const UIKitPath = "/System/Library/Frameworks/UIKit.framework/UIKit"

// OpenGLESPath is the iOS OpenGL ES framework binary (replaced wholesale
// with diplomats by Cider, Section 5.3).
const OpenGLESPath = "/System/Library/Frameworks/OpenGLES.framework/OpenGLES"

// IOSurfacePath is the iOS graphics-memory library.
const IOSurfacePath = "/System/Library/PrivateFrameworks/IOSurface.framework/IOSurface"

// iosDylibBytes sizes each library so ~115 of them total ~90 MB — the
// footprint dyld maps into every process (Section 6.2).
const iosDylibBytes = 800 << 10

// iosSystemLibs is /usr/lib/system: libSystem's real constituent set.
var iosSystemLibs = []string{
	"libsystem_c", "libsystem_kernel", "libsystem_m", "libsystem_malloc",
	"libsystem_network", "libsystem_info", "libsystem_notify",
	"libsystem_sandbox", "libsystem_blocks", "libsystem_dnssd",
	"libdispatch", "libxpc", "libcommonCrypto", "libcompiler_rt",
	"libcopyfile", "libkeymgr", "liblaunch", "libmacho",
	"libquarantine", "libremovefile", "libsystem_coreservices",
	"libunwind", "libcorecrypto", "libsystem_asl", "libsystem_configuration",
}

// iosUsrLibs is /usr/lib.
var iosUsrLibs = []string{
	"libobjc.A", "libc++.1", "libc++abi", "libicucore.A", "libz.1",
	"libsqlite3", "libxml2.2", "libcache", "libbsm.0", "libMobileGestalt",
	"libCRFSuite", "libarchive.2", "libbz2.1.0", "libiconv.2", "liblzma.5",
	"libstdc++.6", "libtidy.A", "libxslt.1", "libresolv.9", "libAccessibility",
}

// iosFrameworks is /System/Library/Frameworks (public).
var iosFrameworks = []string{
	"Foundation", "CoreFoundation", "UIKit", "QuartzCore", "CoreGraphics",
	"CoreText", "OpenGLES", "AudioToolbox", "AVFoundation", "CFNetwork",
	"CoreData", "CoreImage", "CoreLocation", "CoreMedia", "CoreMotion",
	"CoreTelephony", "CoreVideo", "EventKit", "ImageIO", "MapKit",
	"MediaPlayer", "MessageUI", "MobileCoreServices", "OpenAL",
	"Security", "StoreKit", "SystemConfiguration", "WebKit", "AdSupport",
	"iAd", "GLKit", "GameKit", "AddressBook", "AssetsLibrary",
}

// iosPrivateFrameworks is /System/Library/PrivateFrameworks.
var iosPrivateFrameworks = []string{
	"IOSurface", "GraphicsServices", "UIFoundation", "WebCore",
	"IOMobileFramebuffer", "IOKit", "AppSupport", "BackBoardServices",
	"FrontBoardServices", "CoreUI", "TextInput", "SpringBoardServices",
	"MobileKeyBag", "PersistentConnection", "ManagedConfiguration",
	"MediaRemote", "CoreSymbolication", "DataAccessExpress",
	"MobileAsset", "ProtocolBuffer", "AggregateDictionary",
	"MobileInstallation", "MobileIcons", "CrashReporterSupport",
	"ApplePushService", "CoreTime", "Bom", "CaptiveNetwork",
	"CellularPlanManager", "CommonUtilities", "CoreDuet",
	"FTServices", "GeoServices", "IMCore", "IdleTimerServices",
}

// IOSDylibs returns the install names of the full base library set —
// 115 images, matching the count dyld loads on iOS 6 (Section 6.2).
func IOSDylibs() []string {
	var out []string
	out = append(out, LibSystemPath)
	for _, n := range iosSystemLibs {
		out = append(out, "/usr/lib/system/"+n+".dylib")
	}
	for _, n := range iosUsrLibs {
		out = append(out, "/usr/lib/"+n+".dylib")
	}
	for _, n := range iosFrameworks {
		out = append(out, "/System/Library/Frameworks/"+n+".framework/"+n)
	}
	for _, n := range iosPrivateFrameworks {
		out = append(out, "/System/Library/PrivateFrameworks/"+n+".framework/"+n)
	}
	return out
}

// buildIOSFS lays down the iOS filesystem image: the dylib set, dyld, the
// iOS shell, and the directory skeleton apps expect (/Documents and
// friends come from the app sandbox, created at install time).
func buildIOSFS(fs *vfs.FS) error {
	for _, dir := range []string{
		"/usr/lib/system", "/System/Library/Frameworks",
		"/System/Library/PrivateFrameworks", "/System/Library/Caches",
		"/var/mobile/Documents", "/var/mobile/Library", "/var/tmp", "/tmp", "/bin",
		"/Applications", "/private/var",
	} {
		if err := fs.MkdirAll(dir); err != nil {
			return err
		}
	}

	libs := IOSDylibs()
	// libSystem re-exports the whole base set: linking it drags in every
	// library "irrespective of whether or not those libraries are used".
	for i, install := range libs {
		var deps []string
		if install == LibSystemPath {
			deps = append(deps, libs[1:]...)
		} else {
			deps = []string{LibSystemPath}
		}
		if install != LibSystemPath && i%2 == 0 {
			// Half the libraries also depend on a sibling, exercising the
			// recursive dependency walk without changing the total count.
			deps = append(deps, libs[1+(i+3)%(len(libs)-1)])
		}
		exports := []string{fmt.Sprintf("_%s_init", sanitize(install))}
		switch install {
		case OpenGLESPath:
			// The real framework's surface: standard GL plus EAGL. These
			// exports feed the diplomat generator.
			exports = graphics.IOSGLExports()
		case IOSurfacePath:
			exports = append([]string(nil), graphics.IOSurfaceExports...)
		case devices.CoreLocationPath:
			exports = append([]string(nil), devices.CLExports...)
		case devices.AVFoundationPath:
			exports = append([]string(nil), devices.AVExports...)
		}
		bin, err := prog.MachODylib(install, dedup(deps, install), exports, iosDylibBytes)
		if err != nil {
			return err
		}
		if err := fs.WriteFile(install, bin); err != nil {
			return err
		}
	}

	// /usr/lib/dyld: a Mach-O whose text payload names the dyld program.
	dyldBin, err := prog.MachODylib("dyld", nil, nil, 256<<10)
	if err != nil {
		return err
	}
	if err := fs.WriteFile("/usr/lib/dyld", dyldBin); err != nil {
		return err
	}

	// /bin/sh: the iOS shell (Mach-O linking libSystem).
	shBin, err := prog.MachOExecutable(libsystem.ShKey, []string{LibSystemPath}, nil)
	if err != nil {
		return err
	}
	return fs.WriteFile("/bin/sh", shBin)
}

// androidSystemLibs is the Bionic/.so set of an Android 4.2 image.
var androidSystemLibs = []string{
	"libc.so", "libm.so", "libdl.so", "libstdc++.so", "liblog.so",
	"libutils.so", "libcutils.so", "libbinder.so", "libui.so", "libgui.so",
	"libEGL.so", "libGLESv1_CM.so", "libGLESv2.so", "libhardware.so",
	"libandroid.so", "libandroid_runtime.so", "libskia.so", "libssl.so",
	"libcrypto.so", "libz.so", "libsqlite.so", "libmedia.so",
}

// AndroidSystemLibs returns the Android shared-object names laid down in
// /system/lib.
func AndroidSystemLibs() []string {
	return append([]string(nil), androidSystemLibs...)
}

// buildAndroidFS lays down the Android filesystem image.
func buildAndroidFS(fs *vfs.FS) error {
	for _, dir := range []string{
		"/system/bin", "/system/lib", "/system/app", "/system/framework",
		"/data/app", "/data/data", "/data/local/tmp", "/sdcard", "/tmp",
	} {
		if err := fs.MkdirAll(dir); err != nil {
			return err
		}
	}
	for _, so := range androidSystemLibs {
		var needed []string
		if so != "libc.so" {
			needed = []string{"libc.so"}
		}
		exports := []string{fmt.Sprintf("%s_init", sanitize(so))}
		switch so {
		case "libGLESv2.so":
			needed = append(needed, "libhardware.so")
			exports = append([]string(nil), graphics.GLFunctions...)
		case "libEGL.so":
			needed = append(needed, "libhardware.so")
			exports = append([]string(nil), graphics.EGLFunctions...)
		}
		bin, err := prog.ELFSharedObject(so, needed, exports)
		if err != nil {
			return err
		}
		if err := fs.WriteFile("/system/lib/"+so, bin); err != nil {
			return err
		}
	}
	// Cider's custom EAGL bridge library.
	bridgeBin, err := prog.ELFSharedObject("libEGLbridge.so",
		[]string{"libEGL.so", "libgui.so"}, graphics.EGLBridgeFunctions)
	if err != nil {
		return err
	}
	if err := fs.WriteFile(graphics.EGLBridgePath, bridgeBin); err != nil {
		return err
	}
	// The location and camera HAL client libraries (§6.4).
	locBin, err := prog.ELFSharedObject("liblocation.so", []string{"libc.so"}, devices.LocationFunctions)
	if err != nil {
		return err
	}
	if err := fs.WriteFile(devices.LocationLibPath, locBin); err != nil {
		return err
	}
	camBin, err := prog.ELFSharedObject("libcamera_client.so", []string{"libc.so", "libui.so"}, devices.CameraFunctions)
	if err != nil {
		return err
	}
	if err := fs.WriteFile(devices.CameraLibPath, camBin); err != nil {
		return err
	}
	// The gralloc HAL module.
	grallocBin, err := prog.ELFSharedObject("gralloc.grouper.so",
		[]string{"libhardware.so"}, graphics.GrallocFunctions)
	if err != nil {
		return err
	}
	if err := fs.WriteFile(graphics.GrallocPath, grallocBin); err != nil {
		return err
	}
	// /system/bin/sh: dynamic ELF needing libc.
	shBin, err := prog.DynamicELF(bionic.ShKey, []string{"libc.so", "libm.so"})
	if err != nil {
		return err
	}
	return fs.WriteFile("/system/bin/sh", shBin)
}

// sanitize turns an install path into a symbol-safe token.
func sanitize(path string) string {
	out := make([]byte, 0, len(path))
	for i := 0; i < len(path); i++ {
		c := path[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// dedup removes duplicates and self-references from a dependency list.
func dedup(deps []string, self string) []string {
	seen := map[string]bool{self: true}
	var out []string
	for _, d := range deps {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}
