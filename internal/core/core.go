// Package core assembles complete Cider systems: it boots a simulated
// kernel in one of the paper's configurations, lays down the Android and
// iOS filesystem images (including the ~115 dylibs dyld maps into every
// iOS process), installs the binary loaders, syscall tables, duct-taped
// subsystems, and user-space runtimes, and offers the top-level API the
// examples, benchmarks and tools drive.
//
// The four experimental configurations of Section 6 map to:
//
//	ConfigVanilla    — Linux binaries / Android apps on unmodified Android
//	ConfigCider      — Linux binaries / Android apps on Cider (Nexus 7)
//	ConfigCider      — iOS binaries / apps on Cider (same system instance)
//	ConfigIPad       — iOS binaries / apps on a jailbroken iPad mini
package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/abi"
	"repro/internal/bionic"
	"repro/internal/ciderpress"
	"repro/internal/devices"
	"repro/internal/diplomat"
	"repro/internal/ducttape"
	"repro/internal/dyld"
	"repro/internal/fault"
	"repro/internal/gpu"
	"repro/internal/graphics"
	"repro/internal/hw"
	"repro/internal/input"
	"repro/internal/iokit"
	"repro/internal/ipa"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/prog"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/xnu"
)

// Config selects a system configuration.
type Config int

const (
	// ConfigVanilla is unmodified Android on the Nexus 7.
	ConfigVanilla Config = iota
	// ConfigCider is Cider-enhanced Android on the Nexus 7.
	ConfigCider
	// ConfigIPad is iOS 6.1.2 on a jailbroken iPad mini.
	ConfigIPad
)

func (c Config) String() string {
	switch c {
	case ConfigVanilla:
		return "android-vanilla"
	case ConfigCider:
		return "cider"
	case ConfigIPad:
		return "ipad"
	}
	return fmt.Sprintf("config(%d)", int(c))
}

// Options tune system assembly.
type Options struct {
	// SharedCache forces the dyld shared-library cache on or off; nil
	// means the configuration default (on for iPad, off for Cider — the
	// prototype "does not yet support" it).
	SharedCache *bool
	// FixFences repairs the Cider GLES library's fence-synchronization
	// bug (Section 6.3); nil means the configuration default (buggy on
	// Cider, correct on the iPad). The BenchmarkAblationFenceFix knob.
	FixFences *bool
	// Trace attaches a trace.Session at boot (equivalent to calling
	// EnableTrace on the returned System).
	Trace bool
	// ExtendedDevices implements the Section 6.4 sketch on Cider: GPS via
	// an I/O Kit driver plus diplomatic functions, and camera support by
	// replacing the AVFoundation entry points with diplomats into the
	// Android camera library. Off by default — the paper's prototype
	// supports neither, so CoreLocation reports "location unavailable"
	// (the Yelp fallback path) and camera apps fail (the Facetime case).
	ExtendedDevices bool
	// Device overrides the hardware profile.
	Device *hw.Device
}

// System is one booted device.
type System struct {
	// Config is the system configuration.
	Config Config
	// Sim is the discrete-event simulator everything runs on.
	Sim *sim.Sim
	// Kernel is the booted kernel.
	Kernel *kernel.Kernel
	// Registry is the simulated machine-code registry.
	Registry *prog.Registry
	// AndroidFS is the Android filesystem (nil on iPad).
	AndroidFS *vfs.FS
	// IOSFS is the iOS filesystem layer (nil on vanilla Android).
	IOSFS *vfs.FS
	// IPC is the Mach IPC subsystem (nil on vanilla Android).
	IPC *xnu.IPC
	// Psynch is the pthread kernel support (nil on vanilla Android).
	Psynch *xnu.Psynch
	// DT is the duct tape adaptation runtime (nil on vanilla Android).
	DT *ducttape.Env
	// IOKit is the duct-taped driver framework (Cider and iPad).
	IOKit *iokit.Registry
	// FB is the display controller's framebuffer device.
	FB *iokit.FBDevice
	// GPU is the 3D engine.
	GPU *gpu.GPU
	// Gfx is the domestic graphics stack (gralloc/SurfaceFlinger/EGL/GLES;
	// on the iPad it stands in for the equivalent iOS stack).
	Gfx *GfxStack
	// Diplomat is the arbitration engine (Cider only).
	Diplomat *diplomat.Engine
	// GLSpecs are the auto-generated GL diplomats (Cider only).
	GLSpecs []diplomat.Spec
	// Input is the touchscreen/sensor input device.
	Input *input.Device
	// CiderPress is the proxy service (Cider only).
	CiderPress *ciderpress.Service
	// Syslog observes syslogd (Cider and iPad).
	Syslog *services.SyslogBuffer
	// GPS and Camera are the device's sensors (§6.4).
	GPS    *devices.GPS
	Camera *devices.Camera
	// Trace is the system's observability session, nil until EnableTrace.
	Trace *trace.Session
	// Fault is the system's fault injector, nil until EnableFaults.
	Fault *fault.Injector
	// opts holds the assembly options for later stages.
	opts Options
}

// EnableTrace attaches a trace session to the system: the sim feeds it
// scheduler events, the kernel feeds it syscall records and signal
// events, and the library layers (diplomat, dyld, abi) find it through
// Kernel.Tracer. Idempotent; returns the session. Tracing never charges
// virtual time, so enabling it does not change measured latencies.
func (s *System) EnableTrace() *trace.Session {
	if s.Trace == nil {
		s.Trace = trace.NewSession(s.Config.String())
		s.Sim.SetSink(s.Trace)
		s.Kernel.SetTracer(s.Trace)
	}
	return s.Trace
}

// EnableFaults arms a deterministic fault-injection plan on the system:
// the kernel consults it at syscall dispatch, blocking waits, and memory
// mapping; the Mach IPC subsystem reads it dynamically through the
// kernel; and the system's filesystems route Lookup/Create/Remove
// through it. Injections are recorded in the trace session when one is
// attached. Calling again replaces the plan (injector state resets).
//
// The injector is per-System state keyed only to the plan's seed and
// virtual time, so two systems armed with the same plan make identical
// decisions regardless of host scheduling — the soak harness's
// jobs=1 vs jobs=N determinism check rests on this.
func (s *System) EnableFaults(p fault.Plan) *fault.Injector {
	in := fault.NewInjector(p)
	in.OnInject = func(op fault.Op, key string, out fault.Outcome, now time.Duration) {
		if s.Trace == nil {
			return
		}
		proc, id := "", 0
		if cur := s.Sim.Current(); cur != nil {
			proc, id = cur.Name(), cur.ID()
		}
		s.Trace.Fault(proc, id, op.String(), key, out.Errno, now)
	}
	s.Fault = in
	s.Kernel.EnableFaults(in)
	hook := s.vfsFaultHook(in)
	if s.AndroidFS != nil {
		s.AndroidFS.FaultHook = hook
	}
	if s.IOSFS != nil {
		s.IOSFS.FaultHook = hook
	}
	return in
}

// vfsFaultHook adapts the injector to the vfs.FS fault surface. Faults
// only fire inside a running process: boot-time image assembly (WriteFile
// during NewSystem, IPA installs) must never fault, and has no process to
// charge latency to anyway.
func (s *System) vfsFaultHook(in *fault.Injector) func(op, path string) error {
	return func(op, path string) error {
		p := s.Sim.Current()
		if p == nil {
			return nil
		}
		out, ok := in.VFS(p.Now(), op, path)
		if !ok {
			return nil
		}
		if out.Delay > 0 {
			p.Advance(out.Delay)
		}
		switch out.Errno {
		case 0:
			return nil // pure latency spike
		case int(kernel.ENOSPC):
			return &vfs.ErrNoSpace{Path: path}
		default:
			return &vfs.ErrIO{Path: path}
		}
	}
}

// GfxStack bundles one device's graphics objects.
type GfxStack struct {
	Gralloc *graphics.Gralloc
	SF      *graphics.SurfaceFlinger
	GLES    *graphics.GLES
	EGL     *graphics.EGL
	Bridge  *graphics.EAGLBridge
}

// NewSystem boots a system in the given configuration.
func NewSystem(cfg Config, opts ...Options) (*System, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	s := sim.New()
	reg := prog.NewRegistry()
	sys := &System{Config: cfg, Sim: s, Registry: reg, opts: o}

	device := o.Device
	var err error
	var root vfs.FileSystem
	var profile kernel.Profile
	switch cfg {
	case ConfigVanilla:
		if device == nil {
			device = hw.Nexus7()
		}
		profile = kernel.ProfileLinuxVanilla
		if sys.AndroidFS, err = newAndroidFS(); err != nil {
			return nil, err
		}
		root = sys.AndroidFS
	case ConfigCider:
		if device == nil {
			device = hw.Nexus7()
		}
		profile = kernel.ProfileCider
		if sys.AndroidFS, err = newAndroidFS(); err != nil {
			return nil, err
		}
		if sys.IOSFS, err = newIOSFS(); err != nil {
			return nil, err
		}
		// "Cider overlays a file system hierarchy on the existing Android
		// FS" (Section 3).
		root = vfs.NewOverlay(sys.IOSFS, sys.AndroidFS)
	case ConfigIPad:
		if device == nil {
			device = hw.IPadMini()
		}
		profile = kernel.ProfileXNUNative
		if sys.IOSFS, err = newIOSFS(); err != nil {
			return nil, err
		}
		root = sys.IOSFS
	default:
		return nil, fmt.Errorf("core: unknown config %d", cfg)
	}

	k, err := kernel.New(s, kernel.Config{
		Profile: profile, Device: device, Root: root, Registry: reg,
	})
	if err != nil {
		return nil, err
	}
	sys.Kernel = k

	// Devices common to every profile.
	if err := k.AddDevice(kernel.NullDevice{}); err != nil {
		return nil, err
	}
	if err := k.AddDevice(kernel.ZeroDevice{}); err != nil {
		return nil, err
	}

	// Syscall tables, binary loaders, duct-taped subsystems.
	switch cfg {
	case ConfigVanilla:
		k.InstallLinuxTable()
		k.RegisterBinFmt(&kernel.ELFLoader{LinkerKey: bionic.LinkerKey})
	case ConfigCider:
		k.InstallLinuxTable()
		sys.DT = ducttape.NewEnv(k)
		if sys.IPC, err = xnu.InstallIPC(k, sys.DT); err != nil {
			return nil, err
		}
		if sys.Psynch, err = xnu.InstallPsynch(k, sys.DT); err != nil {
			return nil, err
		}
		abi.InstallXNUTable(k)
		k.RegisterBinFmt(&kernel.ELFLoader{LinkerKey: bionic.LinkerKey})
		k.RegisterBinFmt(&kernel.MachOLoader{})
	case ConfigIPad:
		sys.DT = ducttape.NewEnv(k)
		if sys.IPC, err = xnu.InstallIPC(k, sys.DT); err != nil {
			return nil, err
		}
		if sys.Psynch, err = xnu.InstallPsynch(k, sys.DT); err != nil {
			return nil, err
		}
		abi.InstallNativeXNUTable(k)
		k.RegisterBinFmt(&kernel.MachOLoader{})
	}

	// User-space runtimes.
	if cfg != ConfigIPad {
		if err := bionic.RegisterLinker(reg); err != nil {
			return nil, err
		}
		if err := bionic.RegisterSh(reg); err != nil {
			return nil, err
		}
	}
	if cfg != ConfigVanilla {
		sharedCache := cfg == ConfigIPad
		if o.SharedCache != nil {
			sharedCache = *o.SharedCache
		}
		if err := dyld.Register(reg, dyld.Config{SharedCache: sharedCache}); err != nil {
			return nil, err
		}
		if err := libsystem.RegisterSh(reg); err != nil {
			return nil, err
		}
		if sys.Syslog, err = services.RegisterAll(reg, sys.IOSFS); err != nil {
			return nil, err
		}
		if sharedCache {
			if err := dyld.BuildSharedCache(sys.IOSFS, IOSDylibs()); err != nil {
				return nil, err
			}
		}
	}

	if err := sys.assembleGraphics(device); err != nil {
		return nil, err
	}
	if err := sys.assembleInput(); err != nil {
		return nil, err
	}
	if err := sys.assembleDevices(); err != nil {
		return nil, err
	}
	if o.Trace {
		sys.EnableTrace()
	}
	return sys, nil
}

// assembleDevices wires the Section 6.4 device story: the Android-side
// GPS/camera hardware and HAL libraries always exist; the iOS-facing
// CoreLocation/AVFoundation entry points are prototype-faithful stubs on
// Cider unless ExtendedDevices enables the sketched I/O-Kit-plus-diplomat
// support; the iPad uses its native implementations.
func (s *System) assembleDevices() error {
	k := s.Kernel
	reg := s.Registry
	cpu := k.Device().CPU
	s.GPS = devices.NewGPS()
	s.Camera = devices.NewCamera()
	if err := k.AddDevice(s.GPS); err != nil {
		return err
	}
	if err := k.AddDevice(s.Camera); err != nil {
		return err
	}
	switch s.Config {
	case ConfigVanilla:
		if err := devices.RegisterLocationLib(reg, s.GPS, cpu); err != nil {
			return err
		}
		return devices.RegisterCameraLib(reg, s.Camera, s.Gfx.Gralloc, cpu)
	case ConfigCider:
		if err := devices.RegisterLocationLib(reg, s.GPS, cpu); err != nil {
			return err
		}
		if err := devices.RegisterCameraLib(reg, s.Camera, s.Gfx.Gralloc, cpu); err != nil {
			return err
		}
		if s.opts.ExtendedDevices {
			// GPS "supported with I/O Kit drivers and diplomatic
			// functions" (§6.4).
			if err := s.IOKit.RegisterDriver(devices.NewIOKitGPSDriver(s.GPS)); err != nil {
				return err
			}
			return devices.RegisterIOSDiplomats(reg, s.Diplomat)
		}
		return devices.RegisterIOSStubs(reg)
	case ConfigIPad:
		return devices.RegisterIOSNative(reg, s.GPS, s.Camera, s.Gfx.Gralloc, cpu)
	}
	return nil
}

// assembleInput registers the input device and, on Cider, the CiderPress
// proxy app that bridges Android input to iOS apps (Sections 3 and 5.2).
func (s *System) assembleInput() error {
	s.Input = input.NewDevice()
	if err := s.Kernel.AddDevice(s.Input); err != nil {
		return err
	}
	if s.Config == ConfigCider {
		s.CiderPress = &ciderpress.Service{
			InputDev: s.Input,
			SF:       s.Gfx.SF,
			Display:  s.Kernel.Device().Display,
		}
		if err := ciderpress.Register(s.Registry, s.CiderPress); err != nil {
			return err
		}
		if err := ciderpress.InstallBinary(s.AndroidFS); err != nil {
			return err
		}
	}
	return nil
}

// BootServices starts launchd, which spawns configd, notifyd and syslogd
// — the "background user-level services required by iOS apps" (Section 3).
// They run as daemons: the simulation still terminates when ordinary
// processes finish.
func (s *System) BootServices() (*kernel.Task, error) {
	if s.Config == ConfigVanilla {
		return nil, fmt.Errorf("core: vanilla Android has no iOS services")
	}
	return s.Start(services.LaunchdPath, nil)
}

// InstallIPA unpacks a decrypted .ipa onto the device and creates the
// Launcher shortcut; the app's code must already be registered under key.
func (s *System) InstallIPA(ipaBytes []byte, key string, fn prog.Func) (*ipa.Installed, error) {
	if s.IOSFS == nil {
		return nil, fmt.Errorf("core: %s cannot install iOS apps", s.Config)
	}
	if fn != nil {
		if err := s.Registry.Register(key, fn); err != nil {
			return nil, err
		}
	}
	return ipa.Install(s.IOSFS, s.AndroidFS, ipaBytes, ciderpress.BinaryPath)
}

// OpenShortcut acts as the Android Launcher tapping a home-screen icon:
// it reads the .shortcut file ipa.Install wrote and starts its target
// (CiderPress) with the recorded arguments (the iOS app path) —
// "an Android Launcher short cut pointing to CiderPress allows a user to
// click an icon on the Android home screen to start an iOS app" (§3).
func (s *System) OpenShortcut(path string) (*kernel.Task, error) {
	if s.AndroidFS == nil {
		return nil, fmt.Errorf("core: %s has no Launcher", s.Config)
	}
	data, err := s.AndroidFS.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var target string
	var argv []string
	for _, line := range strings.Split(string(data), "\n") {
		if v, ok := strings.CutPrefix(line, "target="); ok {
			target = v
		}
		if v, ok := strings.CutPrefix(line, "argv="); ok && v != "" {
			argv = append(argv, v)
		}
	}
	if target == "" {
		return nil, fmt.Errorf("core: %s is not a shortcut", path)
	}
	return s.Start(target, argv)
}

// LaunchIOSApp starts an installed iOS app the way the Android Launcher
// does: through a CiderPress instance pointed at the app's executable.
func (s *System) LaunchIOSApp(appPath string) (*kernel.Task, error) {
	if s.Config != ConfigCider {
		return nil, fmt.Errorf("core: LaunchIOSApp requires the Cider configuration")
	}
	return s.Start(ciderpress.BinaryPath, []string{appPath})
}

// assembleGraphics builds the device's graphics stack: the GPU engine, the
// framebuffer device (bridged into I/O Kit on Cider/iPad), the domestic
// gralloc/SurfaceFlinger/EGL/GLES stack, and — on Cider — the diplomatic
// replacement of the iOS OpenGL ES and IOSurface libraries (Section 5.3).
func (s *System) assembleGraphics(device *hw.Device) error {
	k := s.Kernel
	s.GPU = gpu.New(device.GPU)
	s.FB = iokit.NewFBDevice(device.Display)

	// Duct-taped I/O Kit on the configurations that have XNU subsystems;
	// its device-add hook sees fb0 (and every other device) below.
	if s.Config != ConfigVanilla {
		reg, err := iokit.Install(k, s.DT)
		if err != nil {
			return err
		}
		s.IOKit = reg
		if err := reg.RegisterDriver(iokit.NewAppleM2CLCD(s.FB)); err != nil {
			return err
		}
	}
	if err := k.AddDevice(s.FB); err != nil {
		return err
	}

	gr := graphics.NewGralloc(device.CPU)
	sf := graphics.NewSurfaceFlinger(s.GPU, gr, s.FB)
	gl := graphics.NewGLES(s.GPU, device.CPU)
	egl := graphics.NewEGL(gl, sf)
	bridge := graphics.NewEAGLBridge(egl)
	s.Gfx = &GfxStack{Gralloc: gr, SF: sf, GLES: gl, EGL: egl, Bridge: bridge}

	switch s.Config {
	case ConfigVanilla, ConfigCider:
		if err := gl.RegisterExports(s.Registry, graphics.GLESv2Path); err != nil {
			return err
		}
		if err := bridge.RegisterExports(s.Registry); err != nil {
			return err
		}
		if err := graphics.RegisterGrallocExports(s.Registry, gr); err != nil {
			return err
		}
	}
	if s.Config == ConfigCider {
		s.Diplomat = diplomat.NewEngine(k)
		specs, err := graphics.InstallCiderIOSGraphics(
			k, s.Diplomat, s.IOSFS, s.AndroidFS, OpenGLESPath, IOSurfacePath)
		if err != nil {
			return err
		}
		s.GLSpecs = specs
		// The prototype's GLES replacement mishandles fences (§6.3);
		// contexts handed to iOS apps inherit the bug unless fixed.
		bridge.FenceBug = true
		if s.opts.FixFences != nil && *s.opts.FixFences {
			bridge.FenceBug = false
		}
		// And it cannot migrate contexts between threads — WebKit's
		// multi-threaded GL use is "only partially supported" (§6.4).
		bridge.StrictSingleThread = true
	}
	if s.Config == ConfigIPad {
		if err := graphics.InstallNativeIOSGraphics(
			s.Registry, gl, bridge, gr, OpenGLESPath, IOSurfacePath); err != nil {
			return err
		}
	}
	return nil
}

// Run drives the simulation until every process exits.
func (s *System) Run() error { return s.Sim.Run() }

// Start launches the executable at path as a new process.
func (s *System) Start(path string, argv []string) (*kernel.Task, error) {
	return s.Kernel.StartProcess(path, argv)
}

// InstallAndroidBinary writes a dynamic ELF executable at path whose body
// is fn and which links the given shared objects (nil means just libc.so).
func (s *System) InstallAndroidBinary(path, key string, needed []string, fn prog.Func) error {
	if s.AndroidFS == nil {
		return fmt.Errorf("core: %s has no Android layer", s.Config)
	}
	if err := s.Registry.Register(key, fn); err != nil {
		return err
	}
	if needed == nil {
		needed = []string{"libc.so"}
	}
	bin, err := prog.DynamicELF(key, needed)
	if err != nil {
		return err
	}
	return s.AndroidFS.WriteFile(path, bin)
}

// InstallStaticAndroidBinary writes a static ELF executable (no linker,
// the shape lmbench's test binaries take).
func (s *System) InstallStaticAndroidBinary(path, key string, fn prog.Func) error {
	if s.AndroidFS == nil {
		return fmt.Errorf("core: %s has no Android layer", s.Config)
	}
	if err := s.Registry.Register(key, fn); err != nil {
		return err
	}
	bin, err := prog.StaticELF(key)
	if err != nil {
		return err
	}
	return s.AndroidFS.WriteFile(path, bin)
}

// InstallIOSBinary writes a Mach-O executable at path whose body is fn.
// nil dylibs means just libSystem (which transitively drags in all ~115
// libraries, as on a real device).
func (s *System) InstallIOSBinary(path, key string, dylibs []string, fn prog.Func) error {
	if s.IOSFS == nil {
		return fmt.Errorf("core: %s has no iOS layer", s.Config)
	}
	if err := s.Registry.Register(key, fn); err != nil {
		return err
	}
	if dylibs == nil {
		dylibs = []string{LibSystemPath}
	}
	bin, err := prog.MachOExecutable(key, dylibs, nil)
	if err != nil {
		return err
	}
	return s.IOSFS.WriteFile(path, bin)
}
