package core

import (
	"sync"

	"repro/internal/vfs"
)

// The iOS and Android filesystem images are pure functions of package
// constants — 115 dylibs, the HAL .so set, dyld, the shells — yet they used
// to be regenerated from scratch for every booted System, which profiling
// showed was the single largest share of benchmark wall time (~45% of a
// Fig. 5 battery, ~90MB of Mach-O bytes re-synthesized per cell). Each
// image is now built once per process, frozen, and cloned per System:
// Clone copies only the directory skeleton and shares file bytes
// copy-on-write, so per-boot cost drops to a tree copy. Freezing makes
// in-place writes through any clone safe (they copy first), and the
// templates themselves are never handed out, so nothing can mutate them.
//
// None of this touches virtual time: image construction never charged
// simulated cycles, so a cloned boot is bit-identical to a rebuilt one
// (the determinism and soak digest tests pin this).
var (
	iosImageOnce sync.Once
	iosImageFS   *vfs.FS
	iosImageErr  error

	androidImageOnce sync.Once
	androidImageFS   *vfs.FS
	androidImageErr  error
)

// newIOSFS returns a fresh iOS filesystem image (a clone of the template).
func newIOSFS() (*vfs.FS, error) {
	iosImageOnce.Do(func() {
		fs := vfs.New()
		if err := buildIOSFS(fs); err != nil {
			iosImageErr = err
			return
		}
		fs.Freeze()
		iosImageFS = fs
	})
	if iosImageErr != nil {
		return nil, iosImageErr
	}
	return iosImageFS.Clone(), nil
}

// newAndroidFS returns a fresh Android filesystem image.
func newAndroidFS() (*vfs.FS, error) {
	androidImageOnce.Do(func() {
		fs := vfs.New()
		if err := buildAndroidFS(fs); err != nil {
			androidImageErr = err
			return
		}
		fs.Freeze()
		androidImageFS = fs
	})
	if androidImageErr != nil {
		return nil, androidImageErr
	}
	return androidImageFS.Clone(), nil
}
