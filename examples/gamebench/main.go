// Gamebench: the motivating workload of the paper's introduction — iOS
// games on Android hardware. Renders a 3D scene from the same iOS binary
// on Cider (diplomatic GL into the Tegra 3) and on the iPad mini (native
// GL into the SGX543MP2), and reports frame rates, frame-time breakdown,
// and the diplomatic-call overhead growth with scene complexity.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/graphics"
	"repro/internal/kernel"
	"repro/internal/prog"
)

// scene describes one rendering workload.
type scene struct {
	name  string
	calls int
	verts int64
}

var scenes = []scene{
	{"menu (sparse)", 200, 8000},
	{"gameplay (simple)", 650, 60000},
	{"boss fight (complex)", 3800, 300000},
}

// renderFrames draws n frames of sc and returns the virtual time taken.
func renderFrames(th *kernel.Thread, gl *graphics.GL, ctx uint64, sc scene, n int) time.Duration {
	draws := sc.calls / 8
	if draws == 0 {
		draws = 1
	}
	vertsPerDraw := sc.verts / int64(draws)
	start := th.Now()
	for f := 0; f < n; f++ {
		for k := 0; k < sc.calls; k++ {
			if k%8 == 7 {
				gl.Call("_glDrawArrays", 4, 0, uint64(vertsPerDraw))
			} else {
				gl.Call("_glUniformMatrix4fv", uint64(k), 1, 0, 0)
			}
		}
		gl.Call("_EAGLContextPresentRenderbuffer", ctx)
	}
	return th.Now() - start
}

// run boots cfg, runs every scene for 10 frames, and returns ms/frame.
func run(cfg core.Config) (map[string]float64, uint64, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, 0, err
	}
	results := map[string]float64{}
	err = sys.InstallIOSBinary("/Applications/Game.app/Game", "game", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		gl, gerr := graphics.BindIOSGL(th)
		if gerr != nil {
			return 1
		}
		ctx := gl.Call("_EAGLContextCreate")
		gl.Call("_EAGLContextSetCurrent", ctx)
		gl.Call("_EAGLRenderbufferStorageFromDrawable", ctx, 1024, 768)
		const frames = 10
		for _, sc := range scenes {
			elapsed := renderFrames(th, gl, ctx, sc, frames)
			results[sc.name] = float64(elapsed.Microseconds()) / 1000 / frames
		}
		return 0
	})
	if err != nil {
		return nil, 0, err
	}
	if _, err := sys.Start("/Applications/Game.app/Game", nil); err != nil {
		return nil, 0, err
	}
	if err := sys.Run(); err != nil {
		return nil, 0, err
	}
	var calls uint64
	if sys.Diplomat != nil {
		calls = sys.Diplomat.Calls()
	}
	return results, calls, nil
}

func main() {
	cider, ciderCalls, err := run(core.ConfigCider)
	if err != nil {
		log.Fatal(err)
	}
	ipad, _, err := run(core.ConfigIPad)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("iOS game binary, same scenes, two devices (ms/frame; lower is better)")
	fmt.Printf("%-24s %12s %12s %10s\n", "scene", "cider/Nexus7", "iPad mini", "cider/iPad")
	for _, sc := range scenes {
		c, i := cider[sc.name], ipad[sc.name]
		fmt.Printf("%-24s %10.2fms %10.2fms %9.2fx\n", sc.name, c, i, c/i)
	}
	fmt.Printf("\ndiplomatic GL calls on Cider: %d\n", ciderCalls)
	fmt.Println("(the iPad's faster GPU wins 3D, as in Fig. 6; the gap widens with")
	fmt.Println(" scene complexity because every GL call pays the diplomat round trip)")
}
