// Multipersona: Section 4.3's signature capability — "while one thread
// executes complicated OpenGL ES rendering algorithms using the domestic
// persona, another thread in the same app can simultaneously process input
// data using the foreign persona." One iOS process; a render thread that
// spends most of its time inside diplomatic (domestic-persona) GL calls; an
// input thread that stays in the foreign persona handling Mach IPC events;
// and a main thread coordinating over duct-taped pthread condvars.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/graphics"
	"repro/internal/input"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/prog"
	"repro/internal/xnu"
)

func main() {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		log.Fatal(err)
	}

	var framesRendered, eventsHandled int
	var renderSwitches uint64

	err = sys.InstallIOSBinary("/Applications/MP.app/MP", "mp-app", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		lc := libsystem.Sys(th)

		// A Mach port carrying synthetic input events to the input thread.
		eventPort := lc.MachReplyPort()

		// Condvar-based shutdown coordination through the duct-taped
		// psynch kernel support.
		const muAddr, cvAddr = 0x1000, 0x2000
		done := false

		// Render thread: GL via diplomats — domestic persona inside each
		// call, foreign persona between calls.
		render := th.SpawnThread("render", func(rt *kernel.Thread) {
			gl, gerr := graphics.BindIOSGL(rt)
			if gerr != nil {
				return
			}
			ctx := gl.Call("_EAGLContextCreate")
			gl.Call("_EAGLContextSetCurrent", ctx)
			gl.Call("_EAGLRenderbufferStorageFromDrawable", ctx, 1024, 768)
			rlc := libsystem.Sys(rt)
			for i := 0; i < 30; i++ {
				gl.Call("_glClear", 0x4000)
				gl.Call("_glDrawArrays", 4, 0, 2000)
				gl.Call("_EAGLContextPresentRenderbuffer", ctx)
				framesRendered++
			}
			renderSwitches = rt.Persona.Switches()
			// Signal completion.
			rlc.PthreadMutexLock(muAddr)
			done = true
			rlc.PthreadCondSignal(cvAddr)
			rlc.PthreadMutexUnlock(muAddr)
		})
		_ = render

		// Input thread: foreign persona throughout, draining the event
		// port while rendering proceeds concurrently.
		th.SpawnThread("input", func(it *kernel.Thread) {
			ilc := libsystem.Sys(it)
			for {
				msg, kr := ilc.MachReceive(eventPort, 200*time.Millisecond)
				if kr != xnu.KernSuccess {
					return
				}
				if h, err := input.UnmarshalHID(msg.Body); err == nil && h.Kind == input.HIDTouch {
					eventsHandled++
				}
				if msg.ID == 0xDEAD {
					return
				}
			}
		})

		// Main thread plays the event source: pump touches while the
		// renderer works, then wait for it on the condvar.
		for i := 0; i < 20; i++ {
			h := input.HIDEvent{Kind: input.HIDTouch, Phase: input.PhaseMoved,
				X: float32(i) / 20, Y: 0.5, TimeNs: int64(i)}
			lc.MachSend(eventPort, &xnu.Message{ID: 1, Body: h.Marshal()}, -1)
			th.Charge(2 * time.Millisecond)
		}
		lc.MachSend(eventPort, &xnu.Message{ID: 0xDEAD, Body: input.HIDEvent{}.Marshal()}, -1)

		lc.PthreadMutexLock(muAddr)
		for !done {
			lc.PthreadCondWait(cvAddr, muAddr, 0)
		}
		lc.PthreadMutexUnlock(muAddr)
		return 0
	})
	if err != nil {
		log.Fatal(err)
	}

	if _, err := sys.Start("/Applications/MP.app/MP", nil); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("one iOS process, three threads, two personas:")
	fmt.Printf("  frames rendered (render thread, domestic persona in GL): %d\n", framesRendered)
	fmt.Printf("  touch events handled (input thread, foreign persona):    %d\n", eventsHandled)
	fmt.Printf("  persona switches by the render thread:                   %d\n", renderSwitches)
	fmt.Printf("  total diplomatic calls:                                  %d\n", sys.Diplomat.Calls())
	if framesRendered != 30 || eventsHandled != 20 {
		log.Fatal("threads did not complete their concurrent work")
	}
}
