// Calculator: an interactive iOS app (in the spirit of the paper's
// "Calculator Pro for iPad Free" demo) packaged as an encrypted .ipa,
// decrypted with a device key, installed with a Launcher shortcut, started
// through CiderPress, and driven by touch: taps on a simulated keypad
// arrive via the eventpump and Mach IPC, the display re-renders through
// diplomatic OpenGL ES, and the result is read back from the app.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/input"
	"repro/internal/ipa"
	"repro/internal/kernel"
	"repro/internal/prog"
	"repro/internal/uikit"
)

// keypad maps tap positions to keys (a 4-wide grid on the 1280x800 panel).
func keyAt(x, y float32) byte {
	keys := [][]byte{
		{'7', '8', '9', '/'},
		{'4', '5', '6', '*'},
		{'1', '2', '3', '-'},
		{'0', 'C', '=', '+'},
	}
	col := int(x * 4)
	row := int(y * 4)
	if row < 0 || row > 3 || col < 0 || col > 3 {
		return 0
	}
	return keys[row][col]
}

// calculator is a tiny integer RPN-less calculator state machine.
type calculator struct {
	acc     int64
	cur     int64
	op      byte
	display string
}

func (c *calculator) press(k byte) {
	switch {
	case k >= '0' && k <= '9':
		c.cur = c.cur*10 + int64(k-'0')
	case k == 'C':
		*c = calculator{}
	case k == '=':
		c.apply()
		c.op = 0
	default: // + - * /
		c.apply()
		c.op = k
	}
	if c.op == 0 {
		c.display = fmt.Sprint(c.acc)
	} else {
		c.display = fmt.Sprint(c.cur)
	}
}

func (c *calculator) apply() {
	switch c.op {
	case 0:
		c.acc = c.cur
	case '+':
		c.acc += c.cur
	case '-':
		c.acc -= c.cur
	case '*':
		c.acc *= c.cur
	case '/':
		if c.cur != 0 {
			c.acc /= c.cur
		}
	}
	c.cur = 0
}

func main() {
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		log.Fatal(err)
	}

	// Package the app as the App Store would: encrypted .ipa.
	key := ipa.DeviceKey{Seed: 0xCA1C}
	bin, err := prog.MachOExecutable("calc-app", []string{
		"/usr/lib/libSystem.B.dylib",
		"/System/Library/Frameworks/UIKit.framework/UIKit",
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	enc, err := ipa.EncryptBinary(bin, key)
	if err != nil {
		log.Fatal(err)
	}
	pkg, err := ipa.Build(&ipa.App{
		Name: "Calculator", BundleID: "com.example.calc", Binary: enc,
		Assets: map[string][]byte{"Icon.png": []byte("ICON")},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Decrypt on the "jailbroken device", then install on Cider.
	clearPkg, err := ipa.Decrypt(pkg, key)
	if err != nil {
		log.Fatal(err)
	}

	calc := &calculator{}
	inst, err := sys.InstallIPA(clearPkg, "calc-app", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		return uikit.Main(th, uikit.Delegate{
			OnGesture: func(app *uikit.App, g input.Gesture) {
				if g.Kind != input.GestureTap {
					return
				}
				if k := keyAt(g.X, g.Y); k != 0 {
					calc.press(k)
					// Redraw the display through diplomatic GL.
					app.GL.Call("_glClear", 0x4000)
					app.GL.Call("_glDrawArrays", 4, 0, 64)
					app.Present()
				}
			},
		})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed %s\n  shortcut: %s\n", inst.ExecPath, inst.ShortcutPath)

	if _, err := sys.LaunchIOSApp(inst.ExecPath); err != nil {
		log.Fatal(err)
	}

	// The user types 12+34= on the keypad.
	if err := sys.InstallStaticAndroidBinary("/system/bin/finger", "finger", func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		th.Charge(80 * time.Millisecond)
		tap := func(k byte) {
			// Find the key's grid cell and tap its center.
			keys := "789/456*123-0C=+"
			idx := -1
			for i := 0; i < len(keys); i++ {
				if keys[i] == k {
					idx = i
					break
				}
			}
			x := int32((idx%4)*320 + 160)
			y := int32((idx/4)*200 + 100)
			sys.Input.Inject(th, input.Event{Type: input.TouchDown, X: x, Y: y})
			th.Charge(3 * time.Millisecond)
			sys.Input.Inject(th, input.Event{Type: input.TouchUp, X: x, Y: y})
			th.Charge(20 * time.Millisecond)
		}
		for _, k := range []byte("12+34=") {
			tap(k)
		}
		sys.Input.Inject(th, input.Event{Type: input.Lifecycle, Code: input.LifecycleStop})
		return 0
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Start("/system/bin/finger", nil); err != nil {
		log.Fatal(err)
	}

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("typed: 12+34=\ndisplay reads: %s\n", calc.display)
	fmt.Printf("frames composited: %d, diplomatic GL calls: %d\n",
		sys.Gfx.SF.Frames(), sys.Diplomat.Calls())
	if calc.display != "46" {
		log.Fatalf("calculator answered %s, want 46", calc.display)
	}
}
