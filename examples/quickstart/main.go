// Quickstart: boot a Cider device and run an unmodified iOS binary and an
// Android binary side by side — the paper's core claim, in ~60 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dyld"
	"repro/internal/kernel"
	"repro/internal/prog"
)

func main() {
	// A Cider system is a Nexus 7 whose Linux kernel has been given a
	// Mach-O loader, per-thread personas, the XNU syscall/signal ABI, and
	// duct-taped Mach IPC / pthread / I/O Kit subsystems.
	sys, err := core.NewSystem(core.ConfigCider)
	if err != nil {
		log.Fatal(err)
	}

	// Install an iOS app: a real Mach-O executable (parseable with
	// cmd/machotool) linking libSystem, which transitively drags in the
	// full ~115-dylib base image, loaded by dyld at exec.
	err = sys.InstallIOSBinary("/Applications/Hello.app/Hello", "hello-ios", nil,
		func(c *prog.Call) uint64 {
			th := c.Ctx.(*kernel.Thread)
			images, _ := dyld.ImagesFor(th.Task())
			fmt.Printf("[iOS]     hello from a Mach-O binary!\n")
			fmt.Printf("[iOS]     persona=%v, dyld loaded %d dylibs, %d MB mapped\n",
				th.Persona.Current(), images.Count(),
				th.Task().Mem().MappedBytes()>>20)
			return 0
		})
	if err != nil {
		log.Fatal(err)
	}

	// And an ordinary Android binary.
	err = sys.InstallStaticAndroidBinary("/system/bin/hello", "hello-android",
		func(c *prog.Call) uint64 {
			th := c.Ctx.(*kernel.Thread)
			fmt.Printf("[Android] hello from an ELF binary! persona=%v\n",
				th.Persona.Current())
			return 0
		})
	if err != nil {
		log.Fatal(err)
	}

	// Start both; the simulation runs them to completion.
	if _, err := sys.Start("/Applications/Hello.app/Hello", nil); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Start("/system/bin/hello", nil); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("both ecosystems ran on one kernel — no VM, no second OS instance")
}
