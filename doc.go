// Package repro is a simulation-based reproduction of "Cider: Native
// Execution of iOS Apps on Android" (Andrus, Van't Hof, AlDuaij, Dall,
// Viennot, Nieh — ASPLOS 2014).
//
// The library builds complete simulated devices — a vanilla Android
// Nexus 7, a Cider-enhanced Nexus 7, and an iOS iPad mini — and runs real
// binary images (Mach-O and ELF), a persona-aware kernel with an XNU ABI,
// duct-taped Mach IPC / pthread / I/O Kit subsystems, diplomatic functions
// into the Android graphics stack, and the paper's full evaluation:
// Figure 5 (lmbench) and Figure 6 (PassMark) across all four
// configurations. See README.md for the tour and DESIGN.md for the system
// inventory; bench_test.go regenerates every figure.
package repro
