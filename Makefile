GO ?= go

.PHONY: build test vet lint race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs ciderlint, the simulator-invariant suite (wallclock,
# chargecheck, waketag, tracepure — see DESIGN.md "Simulation invariants").
lint:
	$(GO) run ./cmd/ciderlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench BenchmarkFig -benchtime=1x .

# verify is the tier-1 gate: everything must build, vet clean, pass
# ciderlint, and pass the full test suite under the race detector.
verify: build vet lint race
