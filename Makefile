GO ?= go

.PHONY: build test vet lint race bench bench-smoke verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs ciderlint, the simulator-invariant suite (wallclock,
# chargecheck, waketag, tracepure — see DESIGN.md "Simulation invariants").
lint:
	$(GO) run ./cmd/ciderlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the wall-clock harness (full Fig. 5 + Fig. 6 batteries at
# jobs=1 and jobs=GOMAXPROCS, best of 3) and writes BENCH_simwall.json.
# Compare two snapshots with: go run ./cmd/benchdiff OLD.json NEW.json
bench:
	$(GO) run ./cmd/simbench -out BENCH_simwall.json

# bench-smoke is the 1-iteration harness run wired into verify: it proves
# the harness itself still works without the repeated timing passes. The
# output goes to a scratch file (gitignored) so verify never dirties the
# committed BENCH_simwall.json snapshot.
bench-smoke:
	$(GO) run ./cmd/simbench -iterations 1 -out BENCH_simwall.smoke.json

# verify is the tier-1 gate: everything must build, vet clean, pass
# ciderlint, pass the full test suite under the race detector, and run
# the bench harness once end to end.
verify: build vet lint race bench-smoke
