GO ?= go

.PHONY: build test vet race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench BenchmarkFig -benchtime=1x .

# verify is the tier-1 gate: everything must build, vet clean, and pass
# the full test suite under the race detector.
verify: build vet race
