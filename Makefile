GO ?= go

.PHONY: build test vet lint lint-fixtures race bench bench-smoke bench-ratchet profile soak soak-smoke soak-smoke-crash soak-smoke-pressure diffcheck diffcheck-smoke replay-smoke explore verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs ciderlint, the full static suite: the v1 simulation
# invariants (wallclock, chargecheck, waketag, tracepure) and the v2
# ABI-fidelity/concurrency/hot-path passes (tablecomplete, xlatecheck,
# lockorder, hotalloc) — see DESIGN.md "Simulation invariants" and
# "Static analysis v2". -timing prints per-analyzer wall-clock totals and
# the trailing findings/allowed/analyzers summary line.
lint:
	$(GO) run ./cmd/ciderlint -timing ./...

# lint-fixtures is the bounded analyzer smoke wired into verify: the
# want-annotated fixture suites prove each analyzer still fires on its
# known-bad shapes (a regression here means the tree gate is toothless).
lint-fixtures:
	$(GO) test -count=1 -run 'TestWallclock|TestChargeCheck|TestWakeTag|TestTracePure|TestTableComplete|TestXlateCheck|TestLockOrder|TestHotAlloc|TestDirectives' ./internal/analysis

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the wall-clock harness (full Fig. 5 + Fig. 6 batteries at
# jobs=1 and jobs=GOMAXPROCS, best of 3) and writes BENCH_simwall.json.
# Compare two snapshots with: go run ./cmd/benchdiff OLD.json NEW.json
bench:
	$(GO) run ./cmd/simbench -out BENCH_simwall.json

# bench-smoke is the 1-iteration harness run wired into verify: it proves
# the harness itself still works without the repeated timing passes, and
# -maxswitchallocs 0 asserts the context-switch round still allocates
# nothing (the floor the syscall fast path stands on). The output goes to
# a scratch file (gitignored) so verify never dirties the committed
# BENCH_simwall.json snapshot.
bench-smoke:
	$(GO) run ./cmd/simbench -iterations 1 -maxswitchallocs 0 -out BENCH_simwall.smoke.json

# bench-ratchet re-measures and fails unless ns/sim-syscall strictly
# improved versus the committed snapshot — run this before regenerating
# BENCH_simwall.json in a perf PR so the claimed win is machine-checked.
bench-ratchet:
	$(GO) run ./cmd/simbench -out BENCH_simwall.ratchet.json
	$(GO) run ./cmd/benchdiff -ratchet BENCH_simwall.json BENCH_simwall.ratchet.json

# profile writes CPU and allocation profiles of one full harness run for
# the burn-down methodology (go tool pprof -top cpu.pprof, etc.).
profile:
	$(GO) run ./cmd/simbench -iterations 1 -cpuprofile cpu.pprof -memprofile mem.pprof -out BENCH_simwall.smoke.json
	@echo "profile: wrote cpu.pprof mem.pprof (inspect with: go tool pprof -top cpu.pprof)"

# soak runs the full fault-schedule matrix over the complete Fig. 5 + 6
# batteries with cross-jobs determinism verification — the long-form
# error-path burn-down (see DESIGN.md "Fault model and error-path
# invariants").
soak:
	$(GO) run ./cmd/cider soak -full -verify

# soak-smoke is the 1-schedule version wired into verify: the eintr-storm
# schedule over the reduced battery, with the jobs=1 vs jobs=N digest
# comparison, proves injection, leak checking and determinism end to end
# in a few seconds.
soak-smoke:
	$(GO) run ./cmd/cider soak -quick -verify -schedule eintr-storm

# soak-smoke-crash is the crash-containment smoke: the daemon-crash
# schedule kills service daemons mid-battery; launchd must respawn them,
# crash reports must land, and the digest must stay jobs-invariant.
soak-smoke-crash:
	$(GO) run ./cmd/cider soak -quick -verify -schedule daemon-crash

# soak-smoke-pressure is the resource-governance smoke: the
# mem-pressure-storm schedule drives the memorystatus ladder (notify,
# shed, jetsam in band order) while the benchmark runs foreground;
# the digest must stay jobs-invariant, the foreground must survive,
# kills must actually fire, and launchd must respawn reaped daemons
# without charging its crash-loop budget.
soak-smoke-pressure:
	$(GO) run ./cmd/cider soak -quick -verify -schedule mem-pressure-storm

# diffcheck runs the differential persona oracle at full depth: 200
# seeded programs, each executed under both personas and diffed after
# normalization; any unallowlisted divergence is minimized, reported,
# and fails the target (see DESIGN.md "Differential persona testing").
diffcheck:
	$(GO) run ./cmd/cider diffcheck --seeds 200

# diffcheck-smoke is the bounded version wired into verify: enough seeds
# to cross every op kind and fault-schedule shape, small enough to stay
# in tier-1 time. The always-on test-suite gate is
# internal/diffcheck.TestTreeHasNoDivergences.
diffcheck-smoke:
	$(GO) run ./cmd/cider diffcheck --seeds 60

# replay-smoke is the record/replay round trip wired into verify: record
# two soak cells (the decision-heavy mach cell and one lmbench cell),
# write each artifact through the canonical encoder, reload, re-execute
# in isolation, and assert the replayed digest is bit-identical to the
# recorded one (see DESIGN.md "Record/replay and schedule exploration").
replay-smoke:
	$(GO) run ./cmd/cider replay -smoke

# explore is the bounded DPOR-lite run: every soak schedule's cells and
# every diffcheck persona pair re-execute under seeded perturbations of
# each ambiguous scheduler decision (equal-time next-pick, wake order,
# preemption ties); any invariant violation or persona divergence is
# delta-debug minimized and written out as a one-command replay
# artifact. Deterministic for fixed rounds — rerunning reproduces the
# same schedules, findings and digests.
explore:
	$(GO) run ./cmd/cider soak --explore 5
	$(GO) run ./cmd/cider diffcheck --explore 3 --seeds 60

# verify is the tier-1 gate: everything must build, vet clean, pass
# ciderlint, pass the full test suite under the race detector, run the
# bench, soak, and diffcheck harnesses once end to end, and prove the
# record/replay round trip is bit-identical.
verify: build vet lint lint-fixtures race bench-smoke soak-smoke soak-smoke-crash soak-smoke-pressure diffcheck-smoke replay-smoke
