module repro

go 1.22

// Dependency policy: none. The build environment has no module proxy, so
// the dependency set is pinned in the strongest possible sense — it is
// empty, fixed entirely by the Go toolchain version above. In particular,
// ciderlint (internal/analysis + cmd/ciderlint) is written against a
// small in-repo mirror of the golang.org/x/tools go/analysis API instead
// of requiring x/tools; in a network-enabled fork, swap the shim for a
// pinned `require golang.org/x/tools vX.Y.Z` and port the analyzers by
// changing imports (the Analyzer/Pass surface matches deliberately).
