// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6), plus ablations for the design choices DESIGN.md
// calls out. Each benchmark runs the corresponding workload on the
// simulated devices and reports the *virtual-time* results as metrics:
// normalized ratios exactly as the figures plot them (Fig. 5: latency,
// lower is better; Fig. 6: throughput, higher is better).
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bionic"
	"repro/internal/core"
	"repro/internal/graphics"
	"repro/internal/kernel"
	"repro/internal/libsystem"
	"repro/internal/lmbench"
	"repro/internal/passmark"
	"repro/internal/prog"
	"repro/internal/trace"
)

// TestTraceZeroCost asserts the observability layer's core invariant:
// attaching a trace session must not change any virtual-time result. The
// full Fig. 5 battery runs untraced and traced; every latency must be
// bit-identical. (The untraced run is the disabled-sink case the
// BenchmarkFig5* numbers rely on.) Sessions are per experiment cell —
// each cell is its own System — written into index-distinct slots, the
// thread-safety pattern lmbench.Options.OnSystem documents.
func TestTraceZeroCost(t *testing.T) {
	tests := lmbench.AllTests()
	run := func(traced bool) (*lmbench.Report, []*trace.Session) {
		t.Helper()
		var opts lmbench.Options
		var sessions []*trace.Session
		if traced {
			sessions = make([]*trace.Session, len(lmbench.Cells(tests)))
			opts.OnSystem = func(cell lmbench.Cell, sys *core.System) {
				s := sys.EnableTrace()
				s.Label = cell.Config.Name + "/" + cell.Test.Name
				sessions[cell.Index] = s
			}
		}
		rep, err := lmbench.RunFigure5Opts(tests, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep, sessions
	}
	plain, _ := run(false)
	traced, sessions := run(true)
	for test, byCfg := range plain.Latency {
		for cfg, want := range byCfg {
			if got := traced.Latency[test][cfg]; got != want {
				t.Errorf("%s/%s: traced latency %v != untraced %v", test, cfg, got, want)
			}
			if plain.Failed[test][cfg] != traced.Failed[test][cfg] {
				t.Errorf("%s/%s: traced failure state differs", test, cfg)
			}
		}
	}
	// The invariance check is only meaningful if the traced run actually
	// collected data: every cell must have attached a session, and every
	// configuration must have recorded syscall histograms somewhere in its
	// cells (basic-op cells barely syscall, so the presence check is per
	// configuration, not per cell).
	sawSyscalls := map[string]bool{}
	for _, s := range sessions {
		if s == nil {
			t.Fatal("a cell ran without attaching a session")
		}
		if len(s.Summarize(false).Syscalls) > 0 {
			sawSyscalls[strings.SplitN(s.Label, "/", 2)[0]] = true
		}
	}
	for _, conf := range lmbench.Configurations() {
		if !sawSyscalls[conf.Name] {
			t.Errorf("configuration %q recorded no syscalls in any cell", conf.Name)
		}
	}
}

// reportFig5 runs an lmbench group and reports each test's normalized
// latencies as benchmark metrics.
func reportFig5(b *testing.B, group string) {
	b.Helper()
	var tests []lmbench.Test
	for _, t := range lmbench.AllTests() {
		if t.Group == group {
			tests = append(tests, t)
		}
	}
	var rep *lmbench.Report
	for i := 0; i < b.N; i++ {
		r, err := lmbench.RunFigure5Tests(tests)
		if err != nil {
			b.Fatal(err)
		}
		rep = r
	}
	for _, t := range tests {
		for _, cfg := range []string{lmbench.ConfigCiderAndroid, lmbench.ConfigCiderIOS, lmbench.ConfigIPad} {
			if v, ok := rep.Normalized(t.Name, cfg); ok {
				b.ReportMetric(v, metricName(t.Name, cfg))
			}
		}
	}
}

// BenchmarkFig5BasicOps regenerates the Fig. 5 basic CPU operations group
// (int mul/div, double add/mul, bogomflops) on all four configurations.
func BenchmarkFig5BasicOps(b *testing.B) { reportFig5(b, "basic") }

// BenchmarkFig5Syscall regenerates the Fig. 5 syscall and signal group
// (null syscall, read, write, open/close, signal handler).
func BenchmarkFig5Syscall(b *testing.B) { reportFig5(b, "syscall") }

// BenchmarkFig5Proc regenerates the Fig. 5 process-creation group
// (fork+exit, fork+exec and fork+sh in android/ios variants).
func BenchmarkFig5Proc(b *testing.B) { reportFig5(b, "proc") }

// BenchmarkFig5IPC regenerates the Fig. 5 local communication and file
// operations group (pipe, AF_UNIX, select 10/100/250, file create/delete).
func BenchmarkFig5IPC(b *testing.B) { reportFig5(b, "comm") }

// reportFig6 runs a PassMark group and reports normalized throughput.
func reportFig6(b *testing.B, group string) {
	b.Helper()
	var tests []passmark.Test
	for _, t := range passmark.AllTests() {
		if t.Group == group {
			tests = append(tests, t)
		}
	}
	var rep *passmark.Report
	for i := 0; i < b.N; i++ {
		r, err := passmark.RunFigure6Tests(tests)
		if err != nil {
			b.Fatal(err)
		}
		rep = r
	}
	for _, t := range tests {
		for _, cfg := range []string{passmark.ConfigCiderAndroid, passmark.ConfigCiderIOS, passmark.ConfigIPad} {
			if v, ok := rep.Normalized(t.Name, cfg); ok {
				b.ReportMetric(v, metricName(t.Name, cfg))
			}
		}
	}
}

// BenchmarkFig6CPU regenerates the Fig. 6 CPU group (integer, floating
// point, primes, string sort, encryption, compression).
func BenchmarkFig6CPU(b *testing.B) { reportFig6(b, "cpu") }

// BenchmarkFig6Storage regenerates the Fig. 6 storage write/read group.
func BenchmarkFig6Storage(b *testing.B) { reportFig6(b, "storage") }

// BenchmarkFig6Memory regenerates the Fig. 6 memory write/read group.
func BenchmarkFig6Memory(b *testing.B) { reportFig6(b, "memory") }

// BenchmarkFig6Graphics2D regenerates the Fig. 6 2D graphics group
// (solid/transparent/complex vectors, image rendering, image filters).
func BenchmarkFig6Graphics2D(b *testing.B) { reportFig6(b, "2d") }

// BenchmarkFig6Graphics3D regenerates the Fig. 6 3D graphics group
// (simple and complex scenes).
func BenchmarkFig6Graphics3D(b *testing.B) { reportFig6(b, "3d") }

// Ablations ------------------------------------------------------------

// forkExitLatency measures iOS fork+exit on a Cider system built with
// opts.
func forkExitLatency(b *testing.B, opts core.Options) time.Duration {
	b.Helper()
	sys, err := core.NewSystem(core.ConfigCider, opts)
	if err != nil {
		b.Fatal(err)
	}
	var elapsed time.Duration
	if err := sys.InstallIOSBinary("/bin/fx", "fx", nil, func(c *prog.Call) uint64 {
		th := c.Ctx.(*kernel.Thread)
		lc := libsystem.Sys(th)
		start := th.Now()
		pid := lc.Fork(func(cc *libsystem.C) { cc.Exit(0) })
		lc.Wait(pid)
		elapsed = th.Now() - start
		return 0
	}); err != nil {
		b.Fatal(err)
	}
	sys.Start("/bin/fx", nil)
	if err := sys.Run(); err != nil {
		b.Fatal(err)
	}
	return elapsed
}

// BenchmarkAblationSharedCache compares iOS fork latency on Cider with and
// without dyld's prelinked shared cache — the optimization the iPad has
// and the Cider prototype lacks (Section 6.2).
func BenchmarkAblationSharedCache(b *testing.B) {
	var off, on time.Duration
	for i := 0; i < b.N; i++ {
		f := false
		tr := true
		off = forkExitLatency(b, core.Options{SharedCache: &f})
		on = forkExitLatency(b, core.Options{SharedCache: &tr})
	}
	b.ReportMetric(float64(off.Nanoseconds()), "fork-no-cache:vns")
	b.ReportMetric(float64(on.Nanoseconds()), "fork-with-cache:vns")
	b.ReportMetric(float64(off)/float64(on), "speedup:x")
}

// BenchmarkAblationDiplomatAggregation compares per-call diplomats against
// one aggregated arbitration per frame — the paper's proposed optimization
// ("aggregating OpenGL ES calls into a single diplomat").
func BenchmarkAblationDiplomatAggregation(b *testing.B) {
	var perCall, batched time.Duration
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(core.ConfigCider)
		if err != nil {
			b.Fatal(err)
		}
		const calls = 1000
		if err := sys.InstallIOSBinary("/bin/agg", "agg", nil, func(c *prog.Call) uint64 {
			th := c.Ctx.(*kernel.Thread)
			gles := sys.Gfx.GLES
			// Warm a context for direct invocation inside the batch.
			s, _ := sys.Gfx.SF.CreateSurface(th, "agg", 640, 480)
			glctx := gles.NewContext(s)
			gles.MakeCurrent(th, glctx)

			// Per-call diplomats.
			dip := sys.Diplomat.Wrap("/system/lib/libGLESv2.so#glEnable")
			dip(&prog.Call{Ctx: th}) // warm resolution cache
			start := th.Now()
			for k := 0; k < calls; k++ {
				dip(&prog.Call{Ctx: th})
			}
			perCall = th.Now() - start

			// One aggregated diplomat per frame.
			start = th.Now()
			sys.Diplomat.Batch(th, func() {
				for k := 0; k < calls; k++ {
					gles.Invoke(th, "glEnable", nil)
				}
			})
			batched = th.Now() - start
			return 0
		}); err != nil {
			b.Fatal(err)
		}
		sys.Start("/bin/agg", nil)
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(perCall.Nanoseconds()), "per-call:vns")
	b.ReportMetric(float64(batched.Nanoseconds()), "aggregated:vns")
	b.ReportMetric(float64(perCall)/float64(batched), "speedup:x")
}

// BenchmarkAblationFenceFix compares the Cider GLES library's buggy fence
// synchronization against the repaired version on the image-rendering
// workload it degrades (Section 6.3).
func BenchmarkAblationFenceFix(b *testing.B) {
	measure := func(fixed bool) time.Duration {
		sys, err := core.NewSystem(core.ConfigCider, core.Options{FixFences: &fixed})
		if err != nil {
			b.Fatal(err)
		}
		var elapsed time.Duration
		if err := sys.InstallIOSBinary("/bin/fence", "fence", nil, func(c *prog.Call) uint64 {
			th := c.Ctx.(*kernel.Thread)
			gl, gerr := sysBindGL(th)
			if gerr != nil {
				b.Error(gerr)
				return 1
			}
			ctx := gl.Call("_EAGLContextCreate")
			gl.Call("_EAGLContextSetCurrent", ctx)
			gl.Call("_EAGLRenderbufferStorageFromDrawable", ctx, 640, 480)
			start := th.Now()
			for i := 0; i < 32; i++ {
				gl.Call("_glTexImage2D", 0, 0, 0, 128, 128, 0, 0, 0, 0)
				gl.Call("_glDrawArrays", 4, 0, 64)
				gl.Call("_glFenceSync", 0, 0)
				gl.Call("_glClientWaitSync", 0, 0, 0)
			}
			elapsed = th.Now() - start
			return 0
		}); err != nil {
			b.Fatal(err)
		}
		sys.Start("/bin/fence", nil)
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		return elapsed
	}
	var buggy, fixed time.Duration
	for i := 0; i < b.N; i++ {
		buggy = measure(false)
		fixed = measure(true)
	}
	b.ReportMetric(float64(buggy.Nanoseconds()), "buggy:vns")
	b.ReportMetric(float64(fixed.Nanoseconds()), "fixed:vns")
	b.ReportMetric(float64(buggy)/float64(fixed), "speedup:x")
}

// BenchmarkAblationPersonaCheck isolates the 8.5% null-syscall overhead:
// the per-entry persona check on, then forced off.
func BenchmarkAblationPersonaCheck(b *testing.B) {
	measure := func(disable bool) time.Duration {
		sys, err := core.NewSystem(core.ConfigCider)
		if err != nil {
			b.Fatal(err)
		}
		if disable {
			sys.Kernel.Costs().PersonaCheck = 0
		}
		var per time.Duration
		if err := sys.InstallStaticAndroidBinary("/bin/null", "null", func(c *prog.Call) uint64 {
			th := c.Ctx.(*kernel.Thread)
			lc := bionic.Sys(th)
			const iters = 1000
			start := th.Now()
			for i := 0; i < iters; i++ {
				lc.GetPPID()
			}
			per = (th.Now() - start) / iters
			return 0
		}); err != nil {
			b.Fatal(err)
		}
		sys.Start("/bin/null", nil)
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		return per
	}
	var with, without time.Duration
	for i := 0; i < b.N; i++ {
		with = measure(false)
		without = measure(true)
	}
	b.ReportMetric(float64(with.Nanoseconds()), "with-check:vns")
	b.ReportMetric(float64(without.Nanoseconds()), "no-check:vns")
	b.ReportMetric(float64(with)/float64(without), "overhead:x")
}

// metricName builds a whitespace-free benchmark metric label.
func metricName(test, cfg string) string {
	return strings.ReplaceAll(test, " ", "-") + "/" + cfg + ":x"
}

// sysBindGL binds the iOS GL surface in a benchmark body.
func sysBindGL(th *kernel.Thread) (*graphics.GL, error) {
	return graphics.BindIOSGL(th)
}
